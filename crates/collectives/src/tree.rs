//! Multi-color k-ary BFS spanning trees (paper §4.2, Figure 2).
//!
//! In the k-color Allreduce the payload is split into `k` chunks; chunk `c`
//! is reduced up spanning tree `c` and broadcast back down it. The defining
//! property (Figure 2: "note non leaf nodes are distinct across colors") is
//! that the **interior (non-leaf) node sets of the k trees are pairwise
//! disjoint**, so
//!
//! * the summing work is spread over the machine instead of concentrating on
//!   one root, and
//! * the links adjacent to each tree's interior carry only that color's
//!   traffic, letting the k reductions progress concurrently without
//!   synchronizing (§4.2: "network packets for each color are transferred
//!   concurrently").
//!
//! Construction: the `n` nodes are divided into `k` equal blocks; block `c`
//! provides the interior of tree `c`, laid out as a k-ary heap (BFS order)
//! with `block[0]` as the root. Every node outside the block is a leaf,
//! attached round-robin to the interior nodes.

/// One color's spanning tree over `n` nodes.
#[derive(Debug, Clone)]
pub struct ColorTree {
    /// The color index in `0..k`.
    pub color: usize,
    /// Root node (receives the fully reduced chunk first).
    pub root: usize,
    /// `parent[v]` — parent of node `v`; `parent[root] == root`.
    parent: Vec<usize>,
    /// `children[v]` — children of node `v` in deterministic order.
    children: Vec<Vec<usize>>,
    /// Interior nodes (root + non-leaf), i.e. the nodes that perform sums.
    interior: Vec<usize>,
}

impl ColorTree {
    /// Build tree `color` of a `k`-color allreduce over `n` nodes with arity
    /// `k` (the paper uses arity = number of colors, e.g. 4-color 4-ary).
    ///
    /// # Panics
    /// Panics unless `n >= 1`, `k >= 1`, `color < k`.
    pub fn build(n: usize, k: usize, color: usize) -> Self {
        assert!(n >= 1 && k >= 1 && color < k, "invalid tree parameters");
        // Block c = the interior candidates for color c. Blocks partition
        // 0..n as evenly as possible; with n < k some blocks borrow from the
        // start (interiors then may overlap — callers should pick k <= n).
        let base = n / k;
        let extra = n % k;
        let (start, len) = if base == 0 {
            // Degenerate: fewer nodes than colors; every tree is a star
            // rooted at `color % n`.
            (color % n, 1)
        } else {
            let s = color * base + color.min(extra);
            let l = base + usize::from(color < extra);
            (s, l)
        };
        let block: Vec<usize> = (start..start + len).collect();

        let mut parent = vec![usize::MAX; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let root = block[0];
        parent[root] = root;

        // Interior laid out as a k-ary heap over `block` (BFS order).
        for (i, &v) in block.iter().enumerate().skip(1) {
            let p = block[(i - 1) / k];
            parent[v] = p;
            children[p].push(v);
        }

        // Attach the remaining nodes as leaves, round-robin over the interior
        // so fan-in stays balanced.
        let mut slot = 0usize;
        for v in 0..n {
            if parent[v] == usize::MAX {
                let p = block[slot % block.len()];
                parent[v] = p;
                children[p].push(v);
                slot += 1;
            }
        }

        ColorTree { color, root, parent, children, interior: block }
    }

    /// Build all `k` trees of a k-color allreduce.
    pub fn build_all(n: usize, k: usize) -> Vec<ColorTree> {
        (0..k).map(|c| Self::build(n, k, c)).collect()
    }

    /// Parent of `v` (the root is its own parent).
    pub fn parent(&self, v: usize) -> usize {
        self.parent[v]
    }

    /// Children of `v`.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Nodes that perform reduction work for this color.
    pub fn interior(&self) -> &[usize] {
        &self.interior
    }

    /// Whether `v` is a leaf (sends its chunk and receives the result only).
    pub fn is_leaf(&self, v: usize) -> bool {
        self.children[v].is_empty()
    }

    /// Number of nodes spanned.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the tree spans a single node.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Depth of node `v` (root = 0).
    pub fn depth(&self, v: usize) -> usize {
        let mut d = 0;
        let mut x = v;
        while self.parent[x] != x {
            x = self.parent[x];
            d += 1;
            assert!(d <= self.len(), "cycle in tree");
        }
        d
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> usize {
        (0..self.len()).map(|v| self.depth(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_spanning(t: &ColorTree, n: usize) {
        // Every node reaches the root.
        for v in 0..n {
            let _ = t.depth(v);
        }
        // children lists are consistent with parent[].
        let mut seen = 0;
        for v in 0..n {
            for &c in t.children(v) {
                assert_eq!(t.parent(c), v);
                seen += 1;
            }
        }
        assert_eq!(seen, n - 1, "tree must have n-1 edges");
    }

    #[test]
    fn figure2_shape_8_nodes_4_colors() {
        // The paper's Figure 2: 4-color 4-ary trees on 8 nodes. Interiors are
        // {0,1}, {2,3}, {4,5}, {6,7}; roots 0, 2, 4, 6.
        let trees = ColorTree::build_all(8, 4);
        assert_eq!(trees[0].root, 0);
        assert_eq!(trees[1].root, 2);
        assert_eq!(trees[2].root, 4);
        assert_eq!(trees[3].root, 6);
        for (c, t) in trees.iter().enumerate() {
            assert_eq!(t.interior(), &[2 * c, 2 * c + 1]);
            check_spanning(t, 8);
        }
    }

    #[test]
    fn interiors_disjoint_across_colors() {
        for n in [4, 8, 13, 16, 32, 64] {
            for k in [2, 3, 4] {
                if n < k {
                    continue;
                }
                let trees = ColorTree::build_all(n, k);
                let mut all = HashSet::new();
                for t in &trees {
                    for &v in t.interior() {
                        assert!(
                            all.insert((t.color, v)) && !all.contains(&(usize::MAX, v)),
                            "n={n} k={k}"
                        );
                    }
                }
                // Check pairwise disjointness directly.
                for a in 0..k {
                    for b in a + 1..k {
                        let sa: HashSet<_> = trees[a].interior().iter().collect();
                        let sb: HashSet<_> = trees[b].interior().iter().collect();
                        assert!(sa.is_disjoint(&sb), "n={n} k={k} colors {a},{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn every_tree_spans_all_nodes() {
        for n in [1, 2, 3, 5, 8, 17, 32] {
            for k in [1, 2, 4] {
                if n < k {
                    continue;
                }
                for t in ColorTree::build_all(n, k) {
                    check_spanning(&t, n);
                }
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let t = ColorTree::build(1, 1, 0);
        assert_eq!(t.root, 0);
        assert_eq!(t.parent(0), 0);
        assert!(t.is_leaf(0));
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn height_is_logarithmic() {
        // 4-ary interior of 64/4=16 nodes has heap height 2; leaves add 1.
        let t = ColorTree::build(64, 4, 0);
        assert!(t.height() <= 4, "height {}", t.height());
    }

    #[test]
    fn leaves_balanced_over_interior() {
        let t = ColorTree::build(32, 4, 1);
        let interior: Vec<_> = t.interior().to_vec();
        let loads: Vec<usize> = interior
            .iter()
            .map(|&v| t.children(v).iter().filter(|&&c| t.is_leaf(c)).count())
            .collect();
        let (mn, mx) = (loads.iter().min().copied().unwrap_or(0), loads.iter().max().copied().unwrap_or(0));
        assert!(mx - mn <= 1, "leaf load imbalance: {loads:?}");
    }

    #[test]
    fn more_nodes_than_one_block_still_works() {
        // n not divisible by k.
        let trees = ColorTree::build_all(10, 4);
        for t in &trees {
            check_spanning(t, 10);
        }
        // blocks sized 3,3,2,2
        assert_eq!(trees[0].interior().len(), 3);
        assert_eq!(trees[3].interior().len(), 2);
    }

    #[test]
    #[should_panic]
    fn invalid_color_panics() {
        let _ = ColorTree::build(8, 4, 4);
    }
}
