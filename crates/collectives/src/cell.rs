//! Shared cell descriptor for the scenario-matrix evaluation harness.
//!
//! One [`CellSpec`] names a single point in the `dcnn-eval` matrix —
//! {allreduce algorithm or `auto`} × {world size} × {payload} × {bucket
//! size / overlap mode} × {transport} × {optional fault script} — and can
//! do three things with itself:
//!
//! * **run** on a live [`Comm`] ([`CellSpec::measure_on_comm`]), timing the
//!   configured reduction and capturing the per-link byte counters, so the
//!   same code path produces the row whether the cell executes as
//!   in-process threads or as real TCP processes (the `eval-cell` launch
//!   workload re-parses the spec from `DCNN_*` variables via
//!   [`CellSpec::from_runtime`]);
//! * **simulate** itself ([`CellSpec::simulate`]) by compiling the same
//!   algorithm to a [`dcnn_simnet::CommSchedule`] and running it over the
//!   modelled fat-tree — the basis of the real-vs-simnet discrepancy
//!   report;
//! * **serialize** itself (serde) into the schema-versioned JSON row the
//!   sweep engine writes per cell.
//!
//! Keeping the descriptor here (rather than in the bench crate) lets the
//! facade's launch registry and the sweep engine share one definition
//! through `dcnn-core`, with [`RuntimeConfig`] as the common env carrier.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use serde_json::Value;

use crate::algorithms::{Allreduce, AllreduceAlgo, CostModel};
use crate::config::{OverlapMode, RuntimeConfig};
use crate::runtime::Comm;
use crate::transport::{crc32, TransportKind};
use crate::tune::{agree_scores, AlgoPolicy, Tuner};

/// One point in the evaluation matrix. String-typed where the value must
/// round-trip through environment variables and JSON rows (`algo` holds
/// anything `DCNN_ALGO` accepts, including `auto:<c1>,<c2>`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellSpec {
    /// Allreduce policy in `DCNN_ALGO` syntax (`ring`, `multicolor:2`,
    /// `auto`, `auto:ring,halving-doubling`, ...).
    pub algo: String,
    /// Number of ranks.
    pub world: usize,
    /// Gradient payload reduced per iteration, in bytes (f32-aligned).
    pub payload_bytes: usize,
    /// Bucket size target in bytes; `0` = one fused blocking allreduce.
    pub bucket_bytes: usize,
    /// Overlap mode: `fused` (implied by `bucket_bytes == 0`), `drain`, or
    /// `hooked`.
    pub overlap: String,
    /// Transport backend: `threads` or `tcp`.
    pub transport: String,
    /// Timed iterations; the cell reports the fastest.
    pub iters: usize,
    /// Optional `DCNN_FAULT` script active during the cell.
    pub fault: Option<String>,
}

/// What one rank measured executing a [`CellSpec`] on a live fabric.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellMeasurement {
    /// Fastest single-iteration wall time, nanoseconds.
    pub wall_ns: u64,
    /// Payload bytes reduced per iteration.
    pub bytes: u64,
    /// Per-peer bytes this rank sent over the whole measurement, indexed
    /// by global rank (see [`crate::CommStats::link_bytes_sent`]).
    pub link_bytes_sent: Vec<u64>,
    /// The decision table (`auto`) or fixed algorithm name that ran.
    pub algo_choices: String,
    /// CRC-32 of the final reduced buffer — identical on every rank, the
    /// cell's own correctness check.
    pub fingerprint: u32,
}

impl CellMeasurement {
    /// One-line JSON encoding (what the `eval-cell` workload prints for
    /// the sweep engine to harvest from the child's stdout).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("CellMeasurement serializes")
    }

    /// Parse [`Self::to_json`] output back. Typed deserialization is
    /// spelled out over the untyped document because the vendored serde
    /// shim only parses into [`Value`].
    pub fn from_json(s: &str) -> Result<CellMeasurement, String> {
        let v: Value =
            serde_json::from_str(s).map_err(|e| format!("measurement JSON: {e:?}"))?;
        CellMeasurement::from_value(&v)
    }

    /// Parse a measurement out of an already-parsed JSON document.
    pub fn from_value(v: &Value) -> Result<CellMeasurement, String> {
        Ok(CellMeasurement {
            wall_ns: json_u64(v, "wall_ns", "measurement")?,
            bytes: json_u64(v, "bytes", "measurement")?,
            link_bytes_sent: json_u64_array(v, "link_bytes_sent", "measurement")?,
            algo_choices: json_str(v, "algo_choices", "measurement")?,
            fingerprint: json_u64(v, "fingerprint", "measurement")? as u32,
        })
    }
}

/// `v[k]` as an owned string, with a message naming the field (`what` says
/// which document kind for the error).
pub fn json_str(v: &Value, k: &str, what: &str) -> Result<String, String> {
    v.get(k)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: missing string field {k:?}"))
}

/// `v[k]` as a non-negative integer.
pub fn json_u64(v: &Value, k: &str, what: &str) -> Result<u64, String> {
    v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("{what}: missing integer field {k:?}"))
}

/// `v[k]` as a float.
pub fn json_f64(v: &Value, k: &str, what: &str) -> Result<f64, String> {
    v.get(k).and_then(Value::as_f64).ok_or_else(|| format!("{what}: missing number field {k:?}"))
}

/// `v[k]` as an array of non-negative integers.
pub fn json_u64_array(v: &Value, k: &str, what: &str) -> Result<Vec<u64>, String> {
    v.get(k)
        .and_then(Value::as_array)
        .map(|a| a.iter().filter_map(Value::as_u64).collect::<Vec<u64>>())
        .ok_or_else(|| format!("{what}: missing integer-array field {k:?}"))
}

/// What the simulator predicts for a [`CellSpec`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimEstimate {
    /// Predicted single-iteration wall time, nanoseconds. Bucketed cells
    /// sum their buckets' schedules (no cross-bucket overlap is modelled —
    /// real overlapped runs beating this estimate is expected and is
    /// exactly what the discrepancy report quantifies).
    pub sim_ns: f64,
    /// Peak utilization over the simulated fabric's links, in `[0, 1]`,
    /// maxed across bucket schedules.
    pub max_link_utilization: f64,
}

impl CellSpec {
    /// Parse a spec out of a JSON document (the inverse of the `Serialize`
    /// impl; the vendored serde shim only parses untyped [`Value`]s).
    pub fn from_value(v: &Value) -> Result<CellSpec, String> {
        let fault = match v.get("fault") {
            None | Some(Value::Null) => None,
            Some(f) => Some(
                f.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "cell spec: fault must be a string or null".to_string())?,
            ),
        };
        Ok(CellSpec {
            algo: json_str(v, "algo", "cell spec")?,
            world: json_u64(v, "world", "cell spec")? as usize,
            payload_bytes: json_u64(v, "payload_bytes", "cell spec")? as usize,
            bucket_bytes: json_u64(v, "bucket_bytes", "cell spec")? as usize,
            overlap: json_str(v, "overlap", "cell spec")?,
            transport: json_str(v, "transport", "cell spec")?,
            iters: json_u64(v, "iters", "cell spec")? as usize,
            fault,
        })
    }

    /// Rebuild the spec a TCP child process is being asked to run from its
    /// parsed environment (`DCNN_ALGO`, `DCNN_BUCKET_BYTES`,
    /// `DCNN_OVERLAP_MODE`, `DCNN_EVAL_PAYLOAD`, `DCNN_EVAL_ITERS`,
    /// `DCNN_FAULT`), with `world` taken from the live communicator.
    pub fn from_runtime(cfg: &RuntimeConfig, world: usize) -> CellSpec {
        let bucket_bytes = cfg.bucket_bytes_or_default();
        CellSpec {
            algo: cfg.algo_or_default().to_string(),
            world,
            payload_bytes: cfg.eval_payload_or_default(),
            bucket_bytes,
            overlap: if bucket_bytes == 0 {
                "fused".to_string()
            } else {
                match cfg.overlap_mode_or_default() {
                    OverlapMode::Drain => "drain".to_string(),
                    OverlapMode::Hooked => "hooked".to_string(),
                }
            },
            transport: match cfg.transport_or_default() {
                TransportKind::Threads => "threads".to_string(),
                TransportKind::Tcp => "tcp".to_string(),
            },
            iters: cfg.eval_iters_or_default(),
            fault: cfg.fault.map(|f| f.to_string()),
        }
    }

    /// The `DCNN_*` variables describing this cell to a re-launched child
    /// process. Transport topology (`DCNN_TRANSPORT`, `DCNN_RANK`,
    /// `DCNN_WORLD`, `DCNN_RENDEZVOUS`) is the launcher's job and is not
    /// included.
    pub fn to_env(&self) -> Vec<(&'static str, String)> {
        let mut env = vec![
            ("DCNN_ALGO", self.algo.clone()),
            ("DCNN_BUCKET_BYTES", self.bucket_bytes.to_string()),
            ("DCNN_EVAL_PAYLOAD", self.payload_bytes.to_string()),
            ("DCNN_EVAL_ITERS", self.iters.to_string()),
        ];
        if self.bucket_bytes > 0 && self.overlap != "fused" {
            env.push(("DCNN_OVERLAP_MODE", self.overlap.clone()));
        }
        if let Some(f) = &self.fault {
            env.push(("DCNN_FAULT", f.clone()));
        }
        env
    }

    /// Stable cell identity: `algo/wN/pBYTES/bucketing/transport`, e.g.
    /// `ring/w4/p1048576/fused/threads` or
    /// `multicolor:4/w8/p4194304/b262144-hooked/tcp`. Used as the row file
    /// stem and as the join key between real and simulated results.
    pub fn id(&self) -> String {
        let bucketing = if self.bucket_bytes == 0 {
            "fused".to_string()
        } else {
            format!("b{}-{}", self.bucket_bytes, self.overlap)
        };
        let fault = self.fault.as_ref().map(|f| format!("/{f}")).unwrap_or_default();
        format!(
            "{}/w{}/p{}/{}/{}{}",
            self.algo, self.world, self.payload_bytes, bucketing, self.transport, fault
        )
    }

    /// Parse [`CellSpec::algo`] into the typed policy.
    pub fn policy(&self) -> Result<AlgoPolicy, String> {
        self.algo
            .parse()
            .map_err(|e| format!("cell {}: unparseable algo {:?}: {e}", self.id(), self.algo))
    }

    /// Number of f32 elements in the payload (at least one).
    pub fn elems(&self) -> usize {
        (self.payload_bytes / 4).max(1)
    }

    /// Cut `0..elems` into contiguous bucket ranges of at most
    /// `bucket_bytes` (the whole payload when fused).
    fn bucket_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let elems = self.elems();
        // Fused: one bucket spanning the whole payload.
        let per = if self.bucket_bytes == 0 { elems } else { (self.bucket_bytes / 4).max(1) };
        (0..elems.div_ceil(per)).map(|i| (i * per)..((i + 1) * per).min(elems)).collect()
    }

    /// Execute this cell on a live communicator and time it. Collective:
    /// every rank calls this with the identical spec. The returned
    /// fingerprint is asserted identical across ranks by the caller (the
    /// `eval-cell` workload allgathers it).
    pub fn measure_on_comm(&self, comm: &Comm) -> Result<CellMeasurement, String> {
        let policy = self.policy()?;
        let n = comm.size();
        let elems = self.elems();
        let ranges = self.bucket_ranges();
        let hooked = self.overlap == "hooked";
        let start_stats = comm.stats();
        let mut best_ns = u64::MAX;
        let mut fingerprint = 0u32;
        let mut tuner = match &policy {
            AlgoPolicy::Fixed(_) => None,
            AlgoPolicy::Auto(tcfg) => Some(Tuner::new(tcfg.clone())),
        };
        let fixed = match &policy {
            AlgoPolicy::Fixed(a) => Some(a.build_shared()),
            AlgoPolicy::Auto(_) => None,
        };

        for iter in 0..self.iters.max(1) {
            let mut buf = cell_fill(comm.global_rank(), elems, iter as u64);
            let span_mark = comm.stats().bucket_spans.len();
            let t0 = Instant::now();
            match (&fixed, &mut tuner) {
                (Some(handle), _) if ranges.len() == 1 && self.bucket_bytes == 0 => {
                    handle.run(comm, &mut buf);
                }
                (Some(handle), _) => {
                    run_bucketed(comm, &mut buf, &ranges, hooked, |_slot, _bytes| {
                        Arc::clone(handle)
                    });
                }
                (None, Some(t)) if ranges.len() == 1 && self.bucket_bytes == 0 => {
                    // Fused auto: blocking launch, reported via record().
                    let bytes = (elems * 4) as u64;
                    let sel = t.select(0, bytes, n, false);
                    let s0 = Instant::now();
                    sel.handle.run(comm, &mut buf);
                    t.record(&sel, bytes, s0.elapsed().as_nanos() as u64);
                }
                (None, Some(t)) => {
                    run_bucketed(comm, &mut buf, &ranges, hooked, |slot, bytes| {
                        Arc::clone(&t.select(slot, bytes, n, true).handle)
                    });
                }
                (None, None) => unreachable!("policy is fixed or auto"),
            }
            let ns = t0.elapsed().as_nanos() as u64;
            best_ns = best_ns.min(ns);
            fingerprint = f32_crc(&buf);
            if let Some(t) = &mut tuner {
                let spans = comm.stats().bucket_spans.split_off(span_mark);
                if t.end_epoch(&spans) {
                    let agreed = agree_scores(comm, &t.score_table());
                    t.apply_agreed(&agreed);
                }
            }
        }

        let algo_choices = match (&policy, &tuner) {
            (AlgoPolicy::Fixed(a), _) => a.to_string(),
            (_, Some(t)) => t.decision_table(),
            _ => unreachable!(),
        };
        Ok(CellMeasurement {
            wall_ns: best_ns,
            bytes: (elems * 4) as u64,
            link_bytes_sent: comm.stats().link_bytes_delta(&start_stats),
            algo_choices,
            fingerprint,
        })
    }

    /// Predict this cell's single-iteration time by compiling the same
    /// algorithm(s) to schedules over the modelled fat-tree. `auto` cells
    /// are scored as their steady state: per bucket, the candidate with
    /// the smallest simulated makespan.
    pub fn simulate(&self, cost: &CostModel) -> Result<SimEstimate, String> {
        let policy = self.policy()?;
        let topo = dcnn_simnet::FatTree::minsky(self.world);
        let opts = dcnn_simnet::SimOptions::default();
        let run_one = |algo: &AllreduceAlgo, bytes: f64| {
            let report = algo.build().schedule(self.world, bytes, cost).simulate(&topo, &opts);
            (report.makespan, report.max_link_utilization(&topo))
        };
        let mut sim_ns = 0.0;
        let mut max_util: f64 = 0.0;
        for r in self.bucket_ranges() {
            let bytes = (r.len() * 4) as f64;
            let (secs, util) = match &policy {
                AlgoPolicy::Fixed(a) => run_one(a, bytes),
                AlgoPolicy::Auto(tcfg) => tcfg
                    .candidates
                    .iter()
                    .map(|a| run_one(a, bytes))
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                    .ok_or_else(|| format!("cell {}: auto with no candidates", self.id()))?,
            };
            sim_ns += secs * 1e9;
            max_util = max_util.max(util);
        }
        Ok(SimEstimate { sim_ns, max_link_utilization: max_util })
    }
}

/// Launch every bucket nonblocking and copy the reductions back. `hooked`
/// interleaves a deterministic compute spin between launches (standing in
/// for the backward pass the trainer would be running); `drain` launches
/// back to back. Both wait in launch order, so results are bitwise
/// identical to the fused reduction.
fn run_bucketed(
    comm: &Comm,
    buf: &mut [f32],
    ranges: &[std::ops::Range<usize>],
    hooked: bool,
    mut pick: impl FnMut(usize, u64) -> Arc<dyn Allreduce + Send + Sync>,
) {
    let mut pending = Vec::with_capacity(ranges.len());
    let mut sink = 0.0f32;
    for (slot, r) in ranges.iter().enumerate() {
        let bytes = (r.len() * 4) as u64;
        let algo = pick(slot, bytes);
        pending.push(comm.allreduce_async_labeled(algo, buf[r.clone()].to_vec(), None));
        if hooked {
            // A small fixed busywork quantum per bucket, like a layer's
            // backward pass running while the reduce is in flight.
            for i in 0..2048u32 {
                sink += (i as f32).sqrt();
            }
        }
    }
    std::hint::black_box(sink);
    for (r, p) in ranges.iter().zip(pending) {
        buf[r.clone()].copy_from_slice(&p.wait());
    }
}

/// Deterministic per-rank payload: every rank contributes different bits,
/// varying by iteration, so the reduced fingerprint actually exercises the
/// reduction (an all-zeros payload would fingerprint identically under a
/// broken algorithm).
pub fn cell_fill(rank: usize, elems: usize, iter: u64) -> Vec<f32> {
    let mut state = 0x9e37_79b9_u64
        .wrapping_mul(rank as u64 + 1)
        .wrapping_add(iter.wrapping_mul(0x85eb_ca6b));
    (0..elems)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Small magnitudes keep the sum exact in f32 at any world size.
            ((state >> 33) as u32 % 512) as f32 / 256.0
        })
        .collect()
}

/// CRC-32 over the little-endian bit pattern of `buf` — the cross-rank
/// agreement fingerprint for a reduced buffer.
pub fn f32_crc(buf: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(buf.len() * 4);
    for v in buf {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;

    fn spec(algo: &str, bucket: usize, overlap: &str, world: usize) -> CellSpec {
        CellSpec {
            algo: algo.to_string(),
            world,
            payload_bytes: 16 * 1024,
            bucket_bytes: bucket,
            overlap: overlap.to_string(),
            transport: "threads".to_string(),
            iters: 2,
            fault: None,
        }
    }

    #[test]
    fn id_round_trips_the_matrix_axes() {
        assert_eq!(spec("ring", 0, "fused", 4).id(), "ring/w4/p16384/fused/threads");
        assert_eq!(
            spec("multicolor:4", 4096, "hooked", 8).id(),
            "multicolor:4/w8/p16384/b4096-hooked/threads"
        );
        let mut faulty = spec("ring", 0, "fused", 2);
        faulty.fault = Some("drop-link=0:1".to_string());
        assert!(faulty.id().ends_with("/drop-link=0:1"));
    }

    #[test]
    fn from_runtime_and_to_env_round_trip() {
        let cfg = RuntimeConfig::default()
            .with_algo(AlgoPolicy::Fixed(AllreduceAlgo::PipelinedRing))
            .with_bucket_bytes(4096)
            .with_overlap_mode(OverlapMode::Drain)
            .with_eval_payload(32768)
            .with_eval_iters(4);
        let cell = CellSpec::from_runtime(&cfg, 4);
        assert_eq!(cell.algo, "ring");
        assert_eq!(cell.bucket_bytes, 4096);
        assert_eq!(cell.overlap, "drain");
        assert_eq!((cell.payload_bytes, cell.iters), (32768, 4));

        // Re-parsing the exported environment reproduces the cell.
        let env: std::collections::HashMap<&str, String> = cell.to_env().into_iter().collect();
        let back = RuntimeConfig::from_lookup(|var| env.get(var).cloned()).expect("parses");
        assert_eq!(CellSpec::from_runtime(&back, 4), cell);
    }

    #[test]
    fn fused_bucketed_and_auto_cells_agree_on_the_reduction() {
        // Every bucketing/policy variant of the same payload must produce
        // the same reduced bits on every rank.
        let cells = [
            spec("ring", 0, "fused", 3),
            spec("ring", 4096, "drain", 3),
            spec("ring", 4096, "hooked", 3),
            spec("auto:ring,halving-doubling", 4096, "drain", 3),
        ];
        let mut fingerprints = Vec::new();
        for cell in cells {
            let runs = run_cluster(3, move |comm| {
                cell.measure_on_comm(comm).expect("cell runs").fingerprint
            });
            assert!(runs.iter().all(|&f| f == runs[0]), "ranks disagree");
            fingerprints.push(runs[0]);
        }
        assert!(
            fingerprints.iter().all(|&f| f == fingerprints[0]),
            "bucketing/policy changed the reduction: {fingerprints:?}"
        );
    }

    #[test]
    fn measurement_reports_link_bytes_that_sum_to_traffic() {
        let cell = spec("ring", 0, "fused", 3);
        let runs = run_cluster(3, move |comm| {
            let m = cell.measure_on_comm(comm).expect("cell runs");
            (m.link_bytes_sent.clone(), m.bytes, m.wall_ns)
        });
        for (links, bytes, wall_ns) in &runs {
            assert_eq!(links.len(), 3, "one counter per global rank");
            assert!(*bytes > 0 && *wall_ns > 0);
            let total: u64 = links.iter().sum();
            assert!(total > 0, "a 3-rank ring must move bytes");
        }
    }

    #[test]
    fn measurement_and_spec_round_trip_through_json() {
        let m = CellMeasurement {
            wall_ns: 123_456,
            bytes: 4096,
            link_bytes_sent: vec![0, 2048, 2048],
            algo_choices: "<=4096:ring".to_string(),
            fingerprint: 0xDEAD_BEEF,
        };
        assert_eq!(CellMeasurement::from_json(&m.to_json()), Ok(m));
        let cell = spec("auto:ring,halving-doubling", 4096, "hooked", 4);
        let doc: Value = serde_json::from_str(&serde_json::to_string(&cell).expect("json"))
            .expect("parses");
        assert_eq!(CellSpec::from_value(&doc), Ok(cell));
        assert!(CellMeasurement::from_json("{}").unwrap_err().contains("wall_ns"));
    }

    #[test]
    fn simulate_estimates_every_policy() {
        let cost = CostModel::default();
        for cell in [
            spec("ring", 0, "fused", 4),
            spec("multicolor:4", 0, "fused", 4),
            spec("ring", 4096, "drain", 4),
            spec("auto", 0, "fused", 4),
        ] {
            let est = cell.simulate(&cost).expect("simulates");
            assert!(est.sim_ns > 0.0, "{}: {est:?}", cell.id());
            assert!(
                (0.0..=1.0).contains(&est.max_link_utilization),
                "{}: {est:?}",
                cell.id()
            );
        }
        let bad = spec("warp-speed", 0, "fused", 4);
        assert!(bad.policy().is_err());
    }
}
