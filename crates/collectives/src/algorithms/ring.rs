//! The paper's ring comparator (§5.1): "a pipelined ring algorithm where
//! packets are reduced to a single root node along the ring then broadcast
//! from the root to all peers in the opposite direction."
//!
//! Rank `n-1` is the root. Sub-chunk `s` travels `0 → 1 → … → n-1`, each hop
//! summing its local contribution, then travels `n-1 → … → 0` carrying the
//! final value. Unlike the reduce-scatter ring ([`super::RingReduceScatter`])
//! every byte crosses `O(n)` links, which is why the paper's multi-color
//! algorithm beats it.

use std::collections::HashMap;

use dcnn_simnet::{CommSchedule, OpId};

use super::{even_ranges, Allreduce, CostModel, Pipeline};
use crate::reduce::sum_into;
use crate::runtime::Comm;

const TAG_RED: u32 = 0x0700_0000;
const TAG_BC: u32 = 0x0800_0000;

/// Pipelined reduce-to-root + opposite-direction broadcast ring.
#[derive(Debug, Clone, Default)]
pub struct PipelinedRing {
    pipeline: Pipeline,
}

impl PipelinedRing {
    /// Override pipelining parameters.
    pub fn with_pipeline(pipeline: Pipeline) -> Self {
        PipelinedRing { pipeline }
    }
}

impl Allreduce for PipelinedRing {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn run(&self, comm: &Comm, buf: &mut [f32]) {
        let _phase = comm.phase(self.name());
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let r = comm.rank();
        let s_max = self.pipeline.chunks_for(buf.len() * 4);
        let subs = even_ranges(buf.len(), s_max);
        // Keep up to `n` reduce sub-chunks in flight before collecting the
        // broadcast of the oldest — roughly when the root has finished it.
        let lookahead = n.min(s_max).max(1);

        for i in 0..s_max + lookahead {
            if i < s_max {
                let range = subs[i].clone();
                if r == 0 {
                    comm.send_f32(1, TAG_RED + i as u32, &buf[range]);
                } else {
                    let v = comm.recv_f32(r - 1, TAG_RED + i as u32);
                    sum_into(&mut buf[range.clone()], &v);
                    if r < n - 1 {
                        comm.send_f32(r + 1, TAG_RED + i as u32, &buf[range]);
                    }
                }
            }
            if i >= lookahead {
                let s = i - lookahead;
                let range = subs[s].clone();
                if r == n - 1 {
                    comm.send_f32(r - 1, TAG_BC + s as u32, &buf[range]);
                } else {
                    let v = comm.recv_f32(r + 1, TAG_BC + s as u32);
                    buf[range.clone()].copy_from_slice(&v);
                    if r > 0 {
                        comm.send_f32(r - 1, TAG_BC + s as u32, &buf[range]);
                    }
                }
            }
        }
    }

    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule {
        let mut sch = CommSchedule::new(n.max(1));
        if n <= 1 || bytes <= 0.0 {
            return sch;
        }
        let s_max = self.pipeline.chunks_for(bytes.ceil() as usize);
        let sub = bytes / s_max as f64;
        let mut prev_up: HashMap<usize, OpId> = HashMap::new(); // keyed by sender
        let mut prev_down: HashMap<usize, OpId> = HashMap::new();
        for _s in 0..s_max {
            // Reduce wave 0 → n-1.
            let mut incoming: Option<OpId> = None;
            let mut ready_at_root: Option<OpId> = None;
            for r in 0..n {
                let summed = if r > 0 {
                    let deps: Vec<OpId> = incoming.into_iter().collect();
                    Some(sch.compute(r, cost.sum_secs(sub), deps))
                } else {
                    None
                };
                if r < n - 1 {
                    let mut deps: Vec<OpId> = summed.into_iter().collect();
                    if let Some(&p) = prev_up.get(&r) {
                        deps.push(p);
                    }
                    let t = sch.transfer(r, r + 1, sub, deps);
                    prev_up.insert(r, t);
                    incoming = Some(t);
                } else {
                    ready_at_root = summed;
                }
            }
            // Broadcast wave n-1 → 0.
            let mut have: Option<OpId> = ready_at_root;
            for r in (1..n).rev() {
                let mut deps: Vec<OpId> = have.into_iter().collect();
                if let Some(&p) = prev_down.get(&r) {
                    deps.push(p);
                }
                let t = sch.transfer(r, r - 1, sub, deps);
                prev_down.insert(r, t);
                have = Some(t);
            }
        }
        sch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;
    use dcnn_simnet::{FatTree, SimOptions};

    #[test]
    fn correct_small_pipelined() {
        let algo =
            PipelinedRing::with_pipeline(Pipeline { target_bytes: 32, max_chunks: 8 });
        for n in [2, 3, 5, 8] {
            let len = 50;
            let out = run_cluster(n, |c| {
                let mut buf: Vec<f32> = (0..len).map(|i| (c.rank() + i) as f32).collect();
                algo.run(c, &mut buf);
                buf
            });
            for b in &out {
                for i in 0..len {
                    let want: f32 = (0..n).map(|r| (r + i) as f32).sum();
                    assert!((b[i] - want).abs() < 1e-3, "n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn single_rank_noop() {
        let algo = PipelinedRing::default();
        let out = run_cluster(1, |c| {
            let mut b = vec![1.0f32, 2.0];
            algo.run(c, &mut b);
            b
        });
        assert_eq!(out[0], vec![1.0, 2.0]);
    }

    #[test]
    fn schedule_bytes_are_2_nminus1_payload() {
        let n = 8;
        let bytes = 1e7;
        let s = PipelinedRing::default().schedule(n, bytes, &CostModel::default());
        s.validate();
        let expect = 2.0 * (n as f64 - 1.0) * bytes;
        assert!((s.total_bytes() - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn pipelining_improves_makespan() {
        let topo = FatTree::minsky(16);
        let cost = CostModel::default();
        let bytes = 64e6;
        let fat = PipelinedRing::with_pipeline(Pipeline { target_bytes: usize::MAX, max_chunks: 1 })
            .schedule(16, bytes, &cost)
            .simulate(&topo, &SimOptions::default());
        let pipe = PipelinedRing::default()
            .schedule(16, bytes, &cost)
            .simulate(&topo, &SimOptions::default());
        assert!(
            pipe.makespan < fat.makespan * 0.5,
            "pipelined {} vs monolithic {}",
            pipe.makespan,
            fat.makespan
        );
    }
}
