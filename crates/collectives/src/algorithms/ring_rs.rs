//! Classic reduce-scatter + allgather ring allreduce (the NCCL/Horovod
//! bandwidth-optimal algorithm). Not in the paper — included as an ablation
//! so the benches can situate the multi-color trees against the algorithm
//! that later became standard practice.
//!
//! Every rank sends `2(n-1)/n × payload` in total, the bandwidth lower bound
//! for an allreduce, at the cost of `2(n-1)` latency terms.

use dcnn_simnet::{CommSchedule, OpId};

use super::{even_ranges, Allreduce, CostModel};
use crate::runtime::Comm;

/// Reduce-scatter + allgather ring.
#[derive(Debug, Clone, Copy, Default)]
pub struct RingReduceScatter;

impl Allreduce for RingReduceScatter {
    fn name(&self) -> &'static str {
        "ring-reduce-scatter"
    }

    fn run(&self, comm: &Comm, buf: &mut [f32]) {
        // Composed from the first-class primitives: an even reduce-scatter
        // (chunk r owned by rank r) followed by the matching allgather.
        let _phase = comm.phase(self.name());
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let counts: Vec<usize> = even_ranges(buf.len(), n).iter().map(|c| c.len()).collect();
        comm.reduce_scatter(buf, &counts);
        comm.allgather_f32(buf, &counts);
    }

    fn reduce_scatter(&self, comm: &Comm, buf: &mut [f32], counts: &[usize]) {
        // Native scatter phase: half the traffic of the full allreduce. The
        // ring anchors each element's accumulation order at its owning rank
        // regardless of chunk boundaries, so for a fixed global owner map
        // the owned-chunk bits are independent of how the payload is
        // bucketed — and, with even counts, identical to `run`'s.
        let _phase = comm.phase(self.name());
        comm.reduce_scatter(buf, counts);
    }

    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule {
        let mut sch = CommSchedule::new(n.max(1));
        if n <= 1 || bytes <= 0.0 {
            return sch;
        }
        let chunk = bytes / n as f64;
        let mut last: Vec<Option<OpId>> = vec![None; n];
        // Reduce-scatter phase: each step every rank sends one chunk and sums
        // the one it received.
        for _step in 0..n - 1 {
            let mut incoming: Vec<Option<OpId>> = vec![None; n];
            let snapshot = last.clone();
            for r in 0..n {
                let t = sch.transfer(r, (r + 1) % n, chunk, snapshot[r].into_iter().collect());
                incoming[(r + 1) % n] = Some(t);
            }
            for r in 0..n {
                let mut deps: Vec<OpId> = incoming[r].into_iter().collect();
                if let Some(p) = snapshot[r] {
                    deps.push(p);
                }
                last[r] = Some(sch.compute(r, cost.sum_secs(chunk), deps));
            }
        }
        // Allgather phase: pure forwarding.
        for _step in 0..n - 1 {
            let snapshot = last.clone();
            for r in 0..n {
                let t = sch.transfer(r, (r + 1) % n, chunk, snapshot[r].into_iter().collect());
                last[(r + 1) % n] = Some(t);
            }
        }
        sch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;

    #[test]
    fn correct_various_sizes() {
        for n in [2, 3, 4, 5, 8] {
            for len in [1, 2, n, 4 * n + 3, 100] {
                let out = run_cluster(n, |c| {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| ((c.rank() + 1) * (i + 1)) as f32).collect();
                    RingReduceScatter.run(c, &mut buf);
                    buf
                });
                for (rk, b) in out.iter().enumerate() {
                    for i in 0..len {
                        let want: f32 = (0..n).map(|r| ((r + 1) * (i + 1)) as f32).sum();
                        assert!(
                            (b[i] - want).abs() < 1e-2 * want.abs().max(1.0),
                            "n={n} len={len} rank={rk} i={i}: {} vs {want}",
                            b[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn len_smaller_than_ranks() {
        // Chunks may be empty; algorithm must still terminate correctly.
        let out = run_cluster(6, |c| {
            let mut buf = vec![c.rank() as f32 + 1.0];
            RingReduceScatter.run(c, &mut buf);
            buf
        });
        for b in out {
            assert_eq!(b[0], 21.0);
        }
    }

    #[test]
    fn schedule_bandwidth_optimal() {
        let n = 8;
        let bytes = 8e6;
        let s = RingReduceScatter.schedule(n, bytes, &CostModel::default());
        s.validate();
        // 2(n-1) steps × n ranks × bytes/n per send = 2(n-1) × bytes total.
        let expect = 2.0 * (n as f64 - 1.0) * bytes;
        assert!((s.total_bytes() - expect).abs() < 1e-6 * expect);
    }
}
