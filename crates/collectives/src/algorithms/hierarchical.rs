//! Two-level hierarchical allreduce — an extension beyond the paper.
//!
//! Groups of `group_size` ranks first reduce to a group leader (binomial
//! tree), the leaders run an inner allreduce among themselves (the paper's
//! multi-color algorithm by default), and the result is broadcast back down
//! within each group. This is the structure that later became standard for
//! node/rack hierarchies (NCCL's tree+ring hybrids); it also mirrors what
//! the paper's Algorithm 1 does implicitly with its intra-node summation
//! before `MPI_Allreduce`.

use dcnn_simnet::{CommSchedule, OpId};

use super::{Allreduce, CostModel, MultiColor};
use crate::primitives::{bcast_f32, reduce_f32};
use crate::runtime::Comm;

/// Hierarchical allreduce: per-group reduce → leaders' allreduce → bcast.
#[derive(Debug, Clone)]
pub struct Hierarchical {
    group_size: usize,
    inner: MultiColor,
}

impl Hierarchical {
    /// Groups of `group_size` ranks; leaders run a `colors`-color allreduce.
    pub fn new(group_size: usize, colors: usize) -> Self {
        assert!(group_size >= 1);
        Hierarchical { group_size, inner: MultiColor::new(colors) }
    }

}

impl Allreduce for Hierarchical {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn run(&self, comm: &Comm, buf: &mut [f32]) {
        let _phase = comm.phase(self.name());
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let me = comm.rank();
        let group = me / self.group_size;
        let sub = comm.split(group as u64, me as i64);
        // Phase 1: reduce to the group leader (sub-rank 0).
        reduce_f32(&sub, 0, buf);
        // Phase 2: leaders allreduce among themselves.
        let is_leader = sub.rank() == 0;
        let leaders = comm.split(u64::from(is_leader), me as i64);
        if is_leader && leaders.size() > 1 {
            self.inner.run(&leaders, buf);
        }
        // Phase 3: broadcast within the group.
        bcast_f32(&sub, 0, buf);
    }

    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule {
        let mut sch = CommSchedule::new(n.max(1));
        if n <= 1 || bytes <= 0.0 {
            return sch;
        }
        let g = self.group_size.min(n);
        let mut entry: Vec<Option<OpId>> = vec![None; n];

        // Phase 1: binomial reduce to each group leader. For simplicity the
        // schedule serializes each member's send into the leader's summation
        // chain (fan-in trees differ only at the margin for small groups).
        let mut leaders = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + g).min(n);
            let leader = start;
            leaders.push(leader);
            let mut last: Option<OpId> = None;
            for member in start + 1..end {
                let t = sch.transfer(member, leader, bytes, last.into_iter().collect());
                let c = sch.compute(leader, cost.sum_secs(bytes), vec![t]);
                entry[member] = Some(t);
                last = Some(c);
            }
            entry[leader] = last;
            start = end;
        }

        // Phase 2: leaders' allreduce, embedded onto the leader ranks and
        // gated on each leader's phase-1 completion.
        if leaders.len() > 1 {
            let inner = self.inner.schedule(leaders.len(), bytes, cost);
            let off = sch.append_embedded(&inner, &leaders, &entry);
            // Every leader's last phase-2 op gates its broadcast.
            for (logical, &leader) in leaders.iter().enumerate() {
                let mut last = entry[leader];
                for (i, op) in inner.ops().iter().enumerate() {
                    let initiator = match op.kind {
                        dcnn_simnet::OpKind::Transfer { src, .. } => src,
                        dcnn_simnet::OpKind::Compute { rank, .. } => rank,
                    };
                    if initiator == logical {
                        last = Some(off + i);
                    }
                }
                entry[leader] = last;
            }
        }

        // Phase 3: leader broadcasts to its group (serialized sends; small
        // groups make the difference to a tree negligible).
        let mut start = 0;
        while start < n {
            let end = (start + g).min(n);
            let leader = start;
            let mut last = entry[leader];
            for member in start + 1..end {
                let t = sch.transfer(leader, member, bytes, last.into_iter().collect());
                last = Some(t);
            }
            start = end;
        }
        sch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;
    use dcnn_simnet::{FatTree, SimOptions};

    #[test]
    fn correct_for_various_group_sizes() {
        for n in [4usize, 6, 8, 12] {
            for g in [1usize, 2, 3, 4] {
                if g > n {
                    continue;
                }
                let algo = Hierarchical::new(g, 2);
                let len = 37;
                let out = run_cluster(n, |c| {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| (c.rank() * 3 + i) as f32).collect();
                    algo.run(c, &mut buf);
                    buf
                });
                for (rk, b) in out.iter().enumerate() {
                    for i in 0..len {
                        let want: f32 = (0..n).map(|r| (r * 3 + i) as f32).sum();
                        assert!(
                            (b[i] - want).abs() < 1e-2 * want.abs().max(1.0),
                            "n={n} g={g} rank={rk} i={i}: {} vs {want}",
                            b[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn group_of_one_degenerates_to_inner() {
        // group_size 1: every rank is a leader; equivalent to multicolor.
        let algo = Hierarchical::new(1, 2);
        let out = run_cluster(4, |c| {
            let mut buf = vec![c.rank() as f32 + 1.0; 8];
            algo.run(c, &mut buf);
            buf[0]
        });
        assert!(out.iter().all(|&v| (v - 10.0).abs() < 1e-4));
    }

    #[test]
    fn schedule_simulates_and_moves_less_inter_group_traffic() {
        let n = 16;
        let g = 4;
        let bytes = 16e6;
        let cost = CostModel::default();
        let sch = Hierarchical::new(g, 2).schedule(n, bytes, &cost);
        sch.validate();
        let topo = FatTree::minsky(n);
        let rep = sch.simulate(&topo, &SimOptions::default());
        assert!(rep.makespan > 0.0 && rep.makespan.is_finite());
        // Traffic accounting: 12 intra-group up + leaders' allreduce
        // (2·(n_leaders−1)·bytes for the trees) + 12 down.
        let flat = MultiColor::new(4).schedule(n, bytes, &cost);
        // Hierarchical sends fewer long-haul bytes but more total hops at
        // this scale; just confirm both deliver and are same order.
        let rep_flat = flat.simulate(&topo, &SimOptions::default());
        assert!(rep.makespan < rep_flat.makespan * 20.0);
    }

    #[test]
    fn leader_self_contains_result_midway() {
        // After phase 1, leaders hold the group sums: verify by a 2-group
        // run where the final result equals the global sum everywhere.
        let algo = Hierarchical::new(2, 1);
        let out = run_cluster(4, |c| {
            let mut buf = vec![2.0f32 * c.rank() as f32; 4];
            algo.run(c, &mut buf);
            buf
        });
        for b in out {
            assert_eq!(b[0], 12.0); // 0+2+4+6
        }
    }
}
