//! Allreduce algorithms.
//!
//! Every algorithm implements [`Allreduce`]: it can *execute* on real `f32`
//! buffers over the threaded runtime (used by the trainer and by correctness
//! tests/benches), and it can *compile* itself to a
//! [`dcnn_simnet::CommSchedule`] whose virtual-time simulation over the
//! modelled fat-tree reproduces the paper's Figure 5/6 comparisons.

mod halving;
mod hierarchical;
mod multicolor;
mod rdouble;
mod ring;
mod ring_rs;

pub use halving::HalvingDoubling;
pub use hierarchical::Hierarchical;
pub use multicolor::MultiColor;
pub use rdouble::RecursiveDoubling;
pub use ring::PipelinedRing;
pub use ring_rs::RingReduceScatter;

use std::sync::Arc;

use dcnn_simnet::CommSchedule;

use crate::runtime::{Comm, PendingReduce};

/// Cost constants for compiling an algorithm to a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Host summation bandwidth in bytes/second (the altivec kernel of the
    /// paper; memory-bandwidth bound on POWER8, ~20 GB/s sustained).
    pub reduce_bw: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { reduce_bw: CostModel::PRIOR_REDUCE_BW }
    }
}

impl CostModel {
    /// Cold-start prior for [`CostModel::reduce_bw`] (bytes/second), used
    /// until a real measurement exists. The paper's POWER8 altivec
    /// summation kernel sustains ~20 GB/s.
    pub const PRIOR_REDUCE_BW: f64 = 20e9;

    /// Seconds to sum `bytes` of received data into a local buffer.
    pub fn sum_secs(&self, bytes: f64) -> f64 {
        bytes / self.reduce_bw
    }

    /// A model whose summation bandwidth is derived from a measurement:
    /// `bytes` of reduced payload observed to take `ns` wall-clock
    /// nanoseconds end to end. Degenerate measurements (zero bytes or zero
    /// time) fall back to the cold-start prior rather than producing an
    /// absurd model.
    pub fn measured(bytes: u64, ns: u64) -> Self {
        if bytes == 0 || ns == 0 {
            return CostModel::default();
        }
        CostModel { reduce_bw: bytes as f64 / (ns as f64 / 1e9) }
    }

    /// Seed a model from a rank's completed bucket reduces: total payload
    /// bytes over total span wall time across `stats.bucket_spans`. Falls
    /// back to the prior when the rank has no spans yet.
    pub fn from_stats(stats: &crate::runtime::CommStats) -> Self {
        let mut bytes = 0u64;
        let mut ns = 0u64;
        for s in &stats.bucket_spans {
            bytes += s.bytes;
            ns += s.duration_ns();
        }
        CostModel::measured(bytes, ns)
    }
}

/// Pipelining parameters: how a payload is cut into sub-chunks that stream
/// through a tree/ring. Matches the paper's "higher level of pipelining on
/// the reduction trees" enabled by direct RDMA.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Preferred sub-chunk size in bytes.
    pub target_bytes: usize,
    /// Upper bound on the number of sub-chunks.
    pub max_chunks: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline { target_bytes: 1 << 20, max_chunks: 32 }
    }
}

impl Pipeline {
    /// Number of sub-chunks for a payload of `bytes`.
    pub fn chunks_for(&self, bytes: usize) -> usize {
        if bytes == 0 {
            return 1;
        }
        bytes.div_ceil(self.target_bytes).clamp(1, self.max_chunks)
    }
}

/// A distributed sum over identical-length `f32` buffers.
pub trait Allreduce {
    /// Human-readable name (appears in figures and benches).
    fn name(&self) -> &'static str;

    /// Execute on the threaded runtime: on return every rank's `buf` holds
    /// the elementwise sum over all ranks.
    fn run(&self, comm: &Comm, buf: &mut [f32]);

    /// Compile to a network schedule for `n` ranks and a `bytes` payload.
    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule;

    /// Launch this algorithm as a nonblocking reduce of `bucket` on `comm`'s
    /// comm worker; the returned handle resolves to the reduced buffer (see
    /// [`Comm::allreduce_async`]). Collective: every rank must start the
    /// same buckets in the same order.
    fn start(&self, comm: &Comm, bucket: Vec<f32>) -> PendingReduce
    where
        Self: Clone + Send + Sync + Sized + 'static,
    {
        comm.allreduce_async(Arc::new(self.clone()), bucket)
    }

    /// Reduce-scatter seam for the sharded optimizer: `counts` cuts `buf`
    /// into one contiguous chunk per rank (chunk `r` owned by rank `r`,
    /// `counts` summing to `buf.len()`); on return this rank's owned chunk
    /// holds the full elementwise sum. Other chunks are unspecified.
    ///
    /// The default implementation runs the complete allreduce, so every
    /// algorithm's owned-chunk bits match its replicated [`Allreduce::run`]
    /// exactly — the invariant the trainer's sharded strategy relies on for
    /// bitwise-equivalent loss. Algorithms with a native scatter phase
    /// (the reduce-scatter ring) override this to skip the allgather half
    /// and its bandwidth.
    fn reduce_scatter(&self, comm: &Comm, buf: &mut [f32], counts: &[usize]) {
        debug_assert_eq!(counts.len(), comm.size());
        debug_assert_eq!(counts.iter().sum::<usize>(), buf.len());
        self.run(comm, buf);
    }
}

/// Enum of all algorithms, for configuration and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// The paper's multi-color tree algorithm (§4.2) with this many colors.
    MultiColor(usize),
    /// The paper's ring comparator: pipelined reduce-to-root + broadcast.
    PipelinedRing,
    /// Whole-buffer recursive doubling ("default OpenMPI" comparator).
    RecursiveDoubling,
    /// Reduce-scatter + allgather ring (NCCL/Horovod style; ablation).
    RingReduceScatter,
    /// Rabenseifner's recursive halving + doubling (ablation).
    HalvingDoubling,
    /// Two-level hierarchical: per-group reduce, leaders' multicolor
    /// allreduce, group broadcast (extension; group size is the parameter).
    Hierarchical(usize),
}

impl AllreduceAlgo {
    /// All algorithms at their default configuration.
    pub fn all() -> Vec<AllreduceAlgo> {
        vec![
            AllreduceAlgo::MultiColor(4),
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::RingReduceScatter,
            AllreduceAlgo::HalvingDoubling,
            AllreduceAlgo::Hierarchical(4),
        ]
    }

    /// The three algorithms the paper compares in Figures 5–6.
    pub fn paper_trio() -> Vec<AllreduceAlgo> {
        vec![
            AllreduceAlgo::MultiColor(4),
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::RecursiveDoubling,
        ]
    }

    /// Instantiate the algorithm.
    pub fn build(&self) -> Box<dyn Allreduce + Send + Sync> {
        match *self {
            AllreduceAlgo::MultiColor(k) => Box::new(MultiColor::new(k)),
            AllreduceAlgo::PipelinedRing => Box::new(PipelinedRing::default()),
            AllreduceAlgo::RecursiveDoubling => Box::new(RecursiveDoubling),
            AllreduceAlgo::RingReduceScatter => Box::new(RingReduceScatter),
            AllreduceAlgo::HalvingDoubling => Box::new(HalvingDoubling),
            AllreduceAlgo::Hierarchical(g) => Box::new(Hierarchical::new(g, 4)),
        }
    }

    /// Instantiate as a shared handle, for repeated async bucket launches
    /// through [`Comm::allreduce_async`].
    pub fn build_shared(&self) -> Arc<dyn Allreduce + Send + Sync> {
        match *self {
            AllreduceAlgo::MultiColor(k) => Arc::new(MultiColor::new(k)),
            AllreduceAlgo::PipelinedRing => Arc::new(PipelinedRing::default()),
            AllreduceAlgo::RecursiveDoubling => Arc::new(RecursiveDoubling),
            AllreduceAlgo::RingReduceScatter => Arc::new(RingReduceScatter),
            AllreduceAlgo::HalvingDoubling => Arc::new(HalvingDoubling),
            AllreduceAlgo::Hierarchical(g) => Arc::new(Hierarchical::new(g, 4)),
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AllreduceAlgo::MultiColor(_) => "multicolor",
            AllreduceAlgo::PipelinedRing => "ring",
            AllreduceAlgo::RecursiveDoubling => "openmpi-default",
            AllreduceAlgo::RingReduceScatter => "ring-reduce-scatter",
            AllreduceAlgo::HalvingDoubling => "halving-doubling",
            AllreduceAlgo::Hierarchical(_) => "hierarchical",
        }
    }
}

/// Renders the [`AllreduceAlgo::name`] string, with a `:k` suffix when a
/// parameterized algorithm departs from its default (`multicolor:2`,
/// `hierarchical:8`). The output always parses back via [`FromStr`].
impl std::fmt::Display for AllreduceAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AllreduceAlgo::MultiColor(k) if k != 4 => write!(f, "multicolor:{k}"),
            AllreduceAlgo::Hierarchical(g) if g != 4 => write!(f, "hierarchical:{g}"),
            _ => f.write_str(self.name()),
        }
    }
}

/// Parses the [`AllreduceAlgo::name`] strings, plus parameterized forms
/// for the algorithms that take one: `multicolor:<colors>` and
/// `hierarchical:<group>` (bare `multicolor` / `hierarchical` mean the
/// default parameter, 4). Any other `name:param` combination is an error.
impl std::str::FromStr for AllreduceAlgo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (base, param) = match s.split_once(':') {
            Some((b, p)) => (b, Some(p)),
            None => (s, None),
        };
        let parse_param = |what: &str| -> Result<usize, String> {
            match param {
                None => Ok(4),
                Some(p) => match p.parse::<usize>() {
                    Ok(k) if k >= 1 => Ok(k),
                    _ => Err(format!("bad {what} {p:?} in allreduce algorithm {s:?}")),
                },
            }
        };
        let algo = match base {
            "multicolor" => AllreduceAlgo::MultiColor(parse_param("color count")?),
            "hierarchical" => AllreduceAlgo::Hierarchical(parse_param("group size")?),
            "ring" => AllreduceAlgo::PipelinedRing,
            "openmpi-default" => AllreduceAlgo::RecursiveDoubling,
            "ring-reduce-scatter" => AllreduceAlgo::RingReduceScatter,
            "halving-doubling" => AllreduceAlgo::HalvingDoubling,
            _ => return Err(format!("unknown allreduce algorithm {s:?}")),
        };
        if param.is_some()
            && !matches!(algo, AllreduceAlgo::MultiColor(_) | AllreduceAlgo::Hierarchical(_))
        {
            return Err(format!("allreduce algorithm {base:?} takes no parameter (got {s:?})"));
        }
        Ok(algo)
    }
}

/// Split `len` items into `k` contiguous, maximally even ranges (the first
/// `len % k` ranges are one element longer). This is the canonical owner map
/// shared by the ring reduce-scatter chunks and the trainer's parameter
/// shards, so the two agree on which rank anchors each element's
/// accumulation order.
pub fn even_ranges(len: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    assert!(k >= 1);
    let base = len / k;
    let extra = len % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let l = base + usize::from(i < extra);
        out.push(start..start + l);
        start += l;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_exactly() {
        for len in [0, 1, 7, 10, 100] {
            for k in [1, 2, 3, 7] {
                let r = even_ranges(len, k);
                assert_eq!(r.len(), k);
                assert_eq!(r[0].start, 0);
                assert_eq!(r[k - 1].end, len);
                for w in r.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = r.iter().map(|x| x.len()).collect();
                let (mn, mx) = (sizes.iter().min().copied().into_iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    #[test]
    fn pipeline_chunk_counts() {
        let p = Pipeline { target_bytes: 1024, max_chunks: 8 };
        assert_eq!(p.chunks_for(0), 1);
        assert_eq!(p.chunks_for(1), 1);
        assert_eq!(p.chunks_for(1024), 1);
        assert_eq!(p.chunks_for(1025), 2);
        assert_eq!(p.chunks_for(1 << 20), 8); // clamped
    }

    #[test]
    fn cost_model_sum_secs() {
        let c = CostModel { reduce_bw: 1e9 };
        assert!((c.sum_secs(1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn algo_names_unique() {
        let names: Vec<_> = AllreduceAlgo::all().iter().map(|a| a.name()).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
#[test]
    fn algo_display_from_str_round_trips() {
        for a in AllreduceAlgo::all() {
            let s = a.to_string();
            assert_eq!(s, a.name(), "defaults render as the bare name");
            assert_eq!(s.parse::<AllreduceAlgo>().unwrap(), a);
        }
        for a in [AllreduceAlgo::MultiColor(2), AllreduceAlgo::Hierarchical(8)] {
            let s = a.to_string();
            assert!(s.contains(':'), "{s}");
            assert_eq!(s.parse::<AllreduceAlgo>().unwrap(), a);
        }
        assert_eq!("multicolor:4".parse::<AllreduceAlgo>().unwrap(), AllreduceAlgo::MultiColor(4));
        assert_eq!("hierarchical".parse::<AllreduceAlgo>().unwrap(), AllreduceAlgo::Hierarchical(4));
        for bad in ["", "ring:2", "multicolor:", "multicolor:0", "halving-doubling:3", "warp"] {
            assert!(bad.parse::<AllreduceAlgo>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn measured_cost_model_keeps_prior_on_degenerate_input() {
        assert_eq!(CostModel::measured(0, 5).reduce_bw, CostModel::PRIOR_REDUCE_BW);
        assert_eq!(CostModel::measured(5, 0).reduce_bw, CostModel::PRIOR_REDUCE_BW);
        let m = CostModel::measured(1 << 20, 1_000_000); // 1 MiB in 1 ms
        assert!((m.reduce_bw - (1u64 << 20) as f64 * 1e3).abs() / m.reduce_bw < 1e-9);
    }

    #[test]
    fn measured_model_reorders_a_crossover_the_static_model_gets_wrong() {
        use dcnn_simnet::{FatTree, SimOptions};
        let n = 16;
        let bytes = 65536.0;
        let makespan = |algo: AllreduceAlgo, cost: &CostModel| {
            algo.build()
                .schedule(n, bytes, cost)
                .simulate(&FatTree::minsky(n), &SimOptions::default())
                .makespan
        };
        // Under the static 20 GB/s prior, the multicolor trees beat the
        // reduce-scatter ring at 64 KiB on 16 nodes — summation is nearly
        // free, so the lower network critical path of the trees wins.
        let prior = CostModel::default();
        assert!(
            makespan(AllreduceAlgo::MultiColor(4), &prior)
                < makespan(AllreduceAlgo::RingReduceScatter, &prior)
        );
        // A host measured at ~100 MB/s summation (64 KiB summed in 655 us)
        // flips that ordering: the trees re-sum whole subtree payloads on
        // the critical path while the ring sums each element once, so the
        // measured model correctly prefers the ring where the static one
        // would still pick multicolor.
        let measured = CostModel::measured(65536, 655_360);
        assert!((measured.reduce_bw - 1e8).abs() / 1e8 < 1e-9);
        assert!(
            makespan(AllreduceAlgo::RingReduceScatter, &measured)
                < makespan(AllreduceAlgo::MultiColor(4), &measured)
        );
    }
}
