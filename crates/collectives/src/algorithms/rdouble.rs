//! Whole-buffer recursive doubling — our stand-in for the "default OpenMPI"
//! allreduce the paper compares against (Figures 5–6).
//!
//! ⌈log₂ n⌉ rounds of full-payload pairwise exchange + local sum. Latency-
//! optimal for small messages but moves `log₂(n) × payload` per NIC with no
//! pipelining, which is why it trails both rings and the multi-color trees at
//! the gradient sizes deep learning cares about.

use dcnn_simnet::{CommSchedule, OpId};

use super::{Allreduce, CostModel};
use crate::reduce::sum_into;
use crate::runtime::Comm;

const TAG: u32 = 0x0900_0000;

/// Recursive-doubling allreduce (with the standard fold for non-powers of 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecursiveDoubling;

/// Largest power of two ≤ n (n ≥ 1).
pub(crate) fn prev_pow2(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// For the non-power-of-two fold: maps effective rank → global rank, where
/// the first `rem` effective ranks are the even ranks among `0..2*rem`.
pub(crate) fn eff_to_global(er: usize, rem: usize) -> usize {
    if er < rem {
        2 * er
    } else {
        er + rem
    }
}

/// Global rank → effective rank, `None` for folded-away odd ranks.
pub(crate) fn global_to_eff(r: usize, rem: usize) -> Option<usize> {
    if r < 2 * rem {
        if r.is_multiple_of(2) {
            Some(r / 2)
        } else {
            None
        }
    } else {
        Some(r - rem)
    }
}

impl Allreduce for RecursiveDoubling {
    fn name(&self) -> &'static str {
        "openmpi-default"
    }

    fn run(&self, comm: &Comm, buf: &mut [f32]) {
        let _phase = comm.phase(self.name());
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let r = comm.rank();
        let p = prev_pow2(n);
        let rem = n - p;

        // Fold: odd ranks below 2*rem contribute to their even neighbour.
        if r < 2 * rem {
            if r % 2 == 1 {
                comm.send_f32(r - 1, TAG, buf);
            } else {
                let v = comm.recv_f32(r + 1, TAG);
                sum_into(buf, &v);
            }
        }

        if let Some(er) = global_to_eff(r, rem) {
            let mut mask = 1usize;
            let mut round = 1u32;
            while mask < p {
                let peer = eff_to_global(er ^ mask, rem);
                comm.send_f32(peer, TAG + round, buf);
                let v = comm.recv_f32(peer, TAG + round);
                sum_into(buf, &v);
                mask <<= 1;
                round += 1;
            }
        }

        // Unfold: even ranks return the result to their folded neighbour.
        if r < 2 * rem {
            if r.is_multiple_of(2) {
                comm.send_f32(r + 1, TAG + 63, buf);
            } else {
                let v = comm.recv_f32(r - 1, TAG + 63);
                buf.copy_from_slice(&v);
            }
        }
    }

    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule {
        let mut sch = CommSchedule::new(n.max(1));
        if n <= 1 || bytes <= 0.0 {
            return sch;
        }
        let p = prev_pow2(n);
        let rem = n - p;
        let mut last: Vec<Option<OpId>> = vec![None; n];

        // Fold.
        for er in 0..rem {
            let even = 2 * er;
            let odd = even + 1;
            let t = sch.transfer(odd, even, bytes, vec![]);
            let c = sch.compute(even, cost.sum_secs(bytes), vec![t]);
            last[even] = Some(c);
            last[odd] = Some(t);
        }

        // Doubling rounds: full-buffer exchange both directions + sums.
        let mut mask = 1usize;
        while mask < p {
            let mut new_last = last.clone();
            for er in 0..p {
                let peer_er = er ^ mask;
                if peer_er < er {
                    continue; // handle each pair once
                }
                let a = eff_to_global(er, rem);
                let b = eff_to_global(peer_er, rem);
                let ta = sch.transfer(a, b, bytes, last[a].into_iter().collect());
                let tb = sch.transfer(b, a, bytes, last[b].into_iter().collect());
                let ca = sch.compute(a, cost.sum_secs(bytes), vec![tb]);
                let cb = sch.compute(b, cost.sum_secs(bytes), vec![ta]);
                new_last[a] = Some(ca);
                new_last[b] = Some(cb);
            }
            last = new_last;
            mask <<= 1;
        }

        // Unfold.
        for er in 0..rem {
            let even = 2 * er;
            let odd = even + 1;
            let t = sch.transfer(even, odd, bytes, last[even].into_iter().collect());
            last[odd] = Some(t);
        }
        sch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;

    #[test]
    fn prev_pow2_values() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(8), 8);
        assert_eq!(prev_pow2(9), 8);
        assert_eq!(prev_pow2(31), 16);
    }

    #[test]
    fn eff_mapping_roundtrips() {
        for n in 1..20usize {
            let p = prev_pow2(n);
            let rem = n - p;
            let mut effs = Vec::new();
            for r in 0..n {
                if let Some(er) = global_to_eff(r, rem) {
                    assert_eq!(eff_to_global(er, rem), r);
                    effs.push(er);
                }
            }
            effs.sort_unstable();
            assert_eq!(effs, (0..p).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn correct_for_powers_and_non_powers() {
        for n in [2, 3, 4, 5, 6, 7, 8, 12] {
            let len = 33;
            let out = run_cluster(n, |c| {
                let mut buf: Vec<f32> = (0..len).map(|i| (c.rank() * 2 + i) as f32).collect();
                RecursiveDoubling.run(c, &mut buf);
                buf
            });
            for (rk, b) in out.iter().enumerate() {
                for i in 0..len {
                    let want: f32 = (0..n).map(|r| (r * 2 + i) as f32).sum();
                    assert!((b[i] - want).abs() < 1e-3, "n={n} rank={rk} i={i}: {} vs {want}", b[i]);
                }
            }
        }
    }

    #[test]
    fn schedule_moves_logn_times_payload_per_rank() {
        let n = 8;
        let bytes = 1e6;
        let s = RecursiveDoubling.schedule(n, bytes, &CostModel::default());
        s.validate();
        // 3 rounds × 8 ranks × bytes each direction.
        let expect = 3.0 * 8.0 * bytes;
        assert!((s.total_bytes() - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn schedule_nonpower_has_fold_traffic() {
        let s = RecursiveDoubling.schedule(6, 1e6, &CostModel::default());
        s.validate();
        // fold: 2 transfers, rounds: 2 × 4 transfers, unfold: 2 transfers
        let expect = (2.0 + 8.0 + 2.0) * 1e6;
        assert!((s.total_bytes() - expect).abs() < 1.0);
    }
}
