//! The paper's multi-color tree Allreduce (§4.2, Figure 2).
//!
//! The payload is split into `k` chunks. Chunk `c` is reduced up color tree
//! `c` (leaves send, interior nodes sum and forward) and then broadcast back
//! down the same tree. Interior node sets are disjoint across colors, so the
//! `k` reductions use different summing CPUs and different root-adjacent
//! links and can progress concurrently. Each chunk is further cut into
//! pipeline sub-chunks that stream through the tree, the way the paper's
//! RDMA-read implementation pipelines the reduction.

use std::collections::HashMap;
use std::ops::Range;

use dcnn_simnet::{CommSchedule, OpId};

use super::{even_ranges, Allreduce, CostModel, Pipeline};
use crate::reduce::sum_into;
use crate::runtime::Comm;
use crate::tree::ColorTree;

const TAG_RED: u32 = 0x0500_0000;
const TAG_BC: u32 = 0x0600_0000;

/// How many pipeline sub-chunks a rank keeps in flight before entering the
/// broadcast phase for the oldest one. Any value ≥ 1 is deadlock-free (the
/// action dependency graph stays acyclic); larger values overlap the
/// reduction and broadcast waves better.
const LOOKAHEAD: usize = 4;

/// Multi-color Allreduce with `colors` spanning trees.
#[derive(Debug, Clone)]
pub struct MultiColor {
    colors: usize,
    pipeline: Pipeline,
}

impl MultiColor {
    /// A `k`-color allreduce with the default pipeline.
    pub fn new(colors: usize) -> Self {
        assert!(colors >= 1, "need at least one color");
        MultiColor { colors, pipeline: Pipeline::default() }
    }

    /// Override the pipelining parameters.
    pub fn with_pipeline(colors: usize, pipeline: Pipeline) -> Self {
        MultiColor { colors, pipeline }
    }

    /// The number of colors requested.
    pub fn colors(&self) -> usize {
        self.colors
    }

    fn effective_colors(&self, n: usize) -> usize {
        self.colors.clamp(1, n)
    }

    fn tag(phase: u32, c: usize, s: usize, s_max: usize) -> u32 {
        phase + (c * s_max + s) as u32
    }

    fn reduce_step(comm: &Comm, tree: &ColorTree, buf: &mut [f32], range: &Range<usize>, tag: u32) {
        let me = comm.rank();
        for &ch in tree.children(me) {
            let v = comm.recv_f32(ch, tag);
            sum_into(&mut buf[range.clone()], &v);
        }
        if tree.parent(me) != me {
            comm.send_f32(tree.parent(me), tag, &buf[range.clone()]);
        }
    }

    fn bcast_step(comm: &Comm, tree: &ColorTree, buf: &mut [f32], range: &Range<usize>, tag: u32) {
        let me = comm.rank();
        if tree.parent(me) != me {
            let v = comm.recv_f32(tree.parent(me), tag);
            buf[range.clone()].copy_from_slice(&v);
        }
        for &ch in tree.children(me) {
            comm.send_f32(ch, tag, &buf[range.clone()]);
        }
    }
}

impl Allreduce for MultiColor {
    fn name(&self) -> &'static str {
        "multicolor"
    }

    fn run(&self, comm: &Comm, buf: &mut [f32]) {
        let _phase = comm.phase(self.name());
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let k = self.effective_colors(n);
        let trees = ColorTree::build_all(n, k);
        let color_ranges = even_ranges(buf.len(), k);
        let s_max = color_ranges
            .iter()
            .map(|r| self.pipeline.chunks_for(r.len() * 4))
            .max()
            .expect("k >= 1");
        // subs[c][s] — absolute element range of sub-chunk s of color c.
        let subs: Vec<Vec<Range<usize>>> = color_ranges
            .iter()
            .map(|cr| {
                even_ranges(cr.len(), s_max)
                    .into_iter()
                    .map(|r| cr.start + r.start..cr.start + r.end)
                    .collect()
            })
            .collect();

        for i in 0..s_max + LOOKAHEAD {
            if i < s_max {
                for (c, tree) in trees.iter().enumerate() {
                    let tag = Self::tag(TAG_RED, c, i, s_max);
                    Self::reduce_step(comm, tree, buf, &subs[c][i], tag);
                }
            }
            if i >= LOOKAHEAD {
                let s = i - LOOKAHEAD;
                for (c, tree) in trees.iter().enumerate() {
                    let tag = Self::tag(TAG_BC, c, s, s_max);
                    Self::bcast_step(comm, tree, buf, &subs[c][s], tag);
                }
            }
        }
    }

    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule {
        let mut sch = CommSchedule::new(n.max(1));
        if n <= 1 || bytes <= 0.0 {
            return sch;
        }
        let k = self.effective_colors(n);
        let color_bytes = bytes / k as f64;
        let s_max = self.pipeline.chunks_for(color_bytes.ceil() as usize);
        let sub_bytes = color_bytes / s_max as f64;

        for tree in ColorTree::build_all(n, k) {
            // Reduce emission order: deepest nodes first, so child transfers
            // exist before the parent's summation op references them.
            let mut by_depth: Vec<usize> = (0..n).collect();
            by_depth.sort_by_key(|&v| std::cmp::Reverse(tree.depth(v)));
            let bfs: Vec<usize> = by_depth.iter().rev().copied().collect();

            // Per-edge predecessors to serialize successive sub-chunks.
            let mut prev_up: HashMap<usize, OpId> = HashMap::new();
            let mut prev_down: HashMap<(usize, usize), OpId> = HashMap::new();

            for _s in 0..s_max {
                let mut red_tx: Vec<Option<OpId>> = vec![None; n];
                let mut chunk_ready: Vec<Option<OpId>> = vec![None; n];
                for &v in &by_depth {
                    if !tree.is_leaf(v) {
                        let deps: Vec<OpId> = tree
                            .children(v)
                            .iter()
                            .map(|&ch| red_tx[ch].expect("child emitted first"))
                            .collect();
                        let secs = cost.sum_secs(tree.children(v).len() as f64 * sub_bytes);
                        chunk_ready[v] = Some(sch.compute(v, secs, deps));
                    }
                    if tree.parent(v) != v {
                        let mut deps: Vec<OpId> = chunk_ready[v].into_iter().collect();
                        if let Some(&p) = prev_up.get(&v) {
                            deps.push(p);
                        }
                        let t = sch.transfer(v, tree.parent(v), sub_bytes, deps);
                        red_tx[v] = Some(t);
                        prev_up.insert(v, t);
                    }
                }

                // Broadcast wave, shallow to deep.
                let mut down_ready: Vec<Option<OpId>> = vec![None; n];
                down_ready[tree.root] = chunk_ready[tree.root];
                for &v in &bfs {
                    for &ch in tree.children(v) {
                        let mut deps: Vec<OpId> = down_ready[v].into_iter().collect();
                        if let Some(&p) = prev_down.get(&(v, ch)) {
                            deps.push(p);
                        }
                        let t = sch.transfer(v, ch, sub_bytes, deps);
                        down_ready[ch] = Some(t);
                        prev_down.insert((v, ch), t);
                    }
                }
            }
        }
        sch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;
    use dcnn_simnet::{FatTree, SimOptions};

    fn reference(n: usize, len: usize) -> Vec<f32> {
        // Sum over ranks of rank-dependent values.
        (0..len)
            .map(|i| (0..n).map(|r| (r * 31 + i) as f32 * 0.5).sum())
            .collect()
    }

    fn check(n: usize, len: usize, k: usize) {
        let algo = MultiColor::with_pipeline(k, Pipeline { target_bytes: 64, max_chunks: 4 });
        let out = run_cluster(n, |c| {
            let mut buf: Vec<f32> =
                (0..len).map(|i| (c.rank() * 31 + i) as f32 * 0.5).collect();
            algo.run(c, &mut buf);
            buf
        });
        let expect = reference(n, len);
        for (r, b) in out.iter().enumerate() {
            for (i, (&got, &want)) in b.iter().zip(&expect).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "n={n} len={len} k={k} rank={r} i={i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn correct_across_sizes_and_colors() {
        for n in [2, 3, 4, 7, 8] {
            for len in [1, 5, 64, 257] {
                for k in [1, 2, 4] {
                    check(n, len, k);
                }
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let algo = MultiColor::new(4);
        let out = run_cluster(1, |c| {
            let mut buf = vec![3.0f32; 8];
            algo.run(c, &mut buf);
            buf
        });
        assert_eq!(out[0], vec![3.0; 8]);
    }

    #[test]
    fn more_colors_than_ranks_clamps() {
        check(2, 16, 8);
    }

    #[test]
    fn schedule_simulates_and_beats_whole_buffer_tree() {
        let topo = FatTree::minsky(16);
        let bytes = 64.0 * 1024.0 * 1024.0;
        let cost = CostModel::default();
        let mc = MultiColor::new(4).schedule(16, bytes, &cost);
        mc.validate();
        let r = mc.simulate(&topo, &SimOptions::default());
        assert!(r.makespan > 0.0);
        // One-color (single tree) should be slower: all summing serializes
        // through one interior set and the root links.
        let one = MultiColor::new(1).schedule(16, bytes, &cost);
        let r1 = one.simulate(&topo, &SimOptions::default());
        assert!(
            r.makespan < r1.makespan,
            "4-color {} vs 1-color {}",
            r.makespan,
            r1.makespan
        );
    }

    #[test]
    fn schedule_total_bytes_scale_with_tree_edges() {
        // Each of k trees moves (n-1) edges × chunk up and down.
        let n = 8;
        let bytes = 8.0e6;
        let s = MultiColor::new(4).schedule(n, bytes, &CostModel::default());
        let expect = 2.0 * (n as f64 - 1.0) * bytes / 4.0 * 4.0; // 2 × (n-1) × bytes
        assert!(
            (s.total_bytes() - expect).abs() < 1e-6 * expect,
            "{} vs {}",
            s.total_bytes(),
            expect
        );
    }

    #[test]
    fn empty_schedule_for_one_rank() {
        let s = MultiColor::new(4).schedule(1, 1e6, &CostModel::default());
        assert!(s.is_empty());
    }
}
