//! Rabenseifner's recursive halving + doubling allreduce — an ablation
//! baseline: bandwidth-optimal like the reduce-scatter ring but with
//! logarithmic latency. MPI libraries (including the MPICH lineage the paper
//! cites as [12]) use it for large payloads.
//!
//! Phase 1 reduce-scatters by recursive halving (exchange half of the current
//! range each round, at distance p/2, p/4, …, 1); phase 2 allgathers by
//! recursive doubling, replaying the ranges in reverse.

use dcnn_simnet::{CommSchedule, OpId};

use super::rdouble::{eff_to_global, global_to_eff, prev_pow2};
use super::{Allreduce, CostModel};
use crate::reduce::sum_into;
use crate::runtime::Comm;

const TAG: u32 = 0x0C00_0000;

/// Recursive halving-doubling (Rabenseifner) allreduce.
#[derive(Debug, Clone, Copy, Default)]
pub struct HalvingDoubling;

impl Allreduce for HalvingDoubling {
    fn name(&self) -> &'static str {
        "halving-doubling"
    }

    fn run(&self, comm: &Comm, buf: &mut [f32]) {
        let _phase = comm.phase(self.name());
        let n = comm.size();
        if n <= 1 {
            return;
        }
        let r = comm.rank();
        let p = prev_pow2(n);
        let rem = n - p;

        // Fold non-power-of-two ranks (same as recursive doubling).
        if r < 2 * rem {
            if r % 2 == 1 {
                comm.send_f32(r - 1, TAG, buf);
            } else {
                let v = comm.recv_f32(r + 1, TAG);
                sum_into(buf, &v);
            }
        }

        if let Some(er) = global_to_eff(r, rem) {
            // Reduce-scatter by recursive halving. `cur` is the range this
            // rank keeps refining; `trail` records (range_before, partner)
            // per step so the allgather can replay it backwards.
            let mut cur = 0..buf.len();
            let mut trail: Vec<(std::ops::Range<usize>, usize)> = Vec::new();
            let mut mask = p / 2;
            let mut round = 1u32;
            while mask >= 1 {
                let peer = eff_to_global(er ^ mask, rem);
                let mid = cur.start + cur.len() / 2;
                let (keep, give) = if er & mask == 0 {
                    (cur.start..mid, mid..cur.end)
                } else {
                    (mid..cur.end, cur.start..mid)
                };
                comm.send_f32(peer, TAG + round, &buf[give.clone()]);
                let v = comm.recv_f32(peer, TAG + round);
                sum_into(&mut buf[keep.clone()], &v);
                trail.push((cur.clone(), peer));
                cur = keep;
                mask /= 2;
                round += 1;
            }

            // Allgather by recursive doubling: reverse the trail.
            for (outer, peer) in trail.into_iter().rev() {
                comm.send_f32(peer, TAG + round, &buf[cur.clone()]);
                let v = comm.recv_f32(peer, TAG + round);
                // The peer holds the other half of `outer`.
                let sibling = if cur.start == outer.start {
                    cur.end..outer.end
                } else {
                    outer.start..cur.start
                };
                buf[sibling].copy_from_slice(&v);
                cur = outer;
                round += 1;
            }
        }

        // Unfold.
        if r < 2 * rem {
            if r.is_multiple_of(2) {
                comm.send_f32(r + 1, TAG + 63, buf);
            } else {
                let v = comm.recv_f32(r - 1, TAG + 63);
                buf.copy_from_slice(&v);
            }
        }
    }

    fn schedule(&self, n: usize, bytes: f64, cost: &CostModel) -> CommSchedule {
        let mut sch = CommSchedule::new(n.max(1));
        if n <= 1 || bytes <= 0.0 {
            return sch;
        }
        let p = prev_pow2(n);
        let rem = n - p;
        let mut last: Vec<Option<OpId>> = vec![None; n];

        for er in 0..rem {
            let (even, odd) = (2 * er, 2 * er + 1);
            let t = sch.transfer(odd, even, bytes, vec![]);
            let c = sch.compute(even, cost.sum_secs(bytes), vec![t]);
            last[even] = Some(c);
            last[odd] = Some(t);
        }

        // Halving rounds: payload per exchange halves each time.
        let mut mask = p / 2;
        let mut part = bytes / 2.0;
        while mask >= 1 {
            let snapshot = last.clone();
            for er in 0..p {
                let peer_er = er ^ mask;
                if peer_er < er {
                    continue;
                }
                let a = eff_to_global(er, rem);
                let b = eff_to_global(peer_er, rem);
                let ta = sch.transfer(a, b, part, snapshot[a].into_iter().collect());
                let tb = sch.transfer(b, a, part, snapshot[b].into_iter().collect());
                let mut da: Vec<OpId> = vec![tb];
                if let Some(x) = snapshot[a] {
                    da.push(x);
                }
                let mut db: Vec<OpId> = vec![ta];
                if let Some(x) = snapshot[b] {
                    db.push(x);
                }
                last[a] = Some(sch.compute(a, cost.sum_secs(part), da));
                last[b] = Some(sch.compute(b, cost.sum_secs(part), db));
            }
            mask /= 2;
            part /= 2.0;
        }

        // Doubling rounds: payload doubles back up; pure copies.
        let mut mask = 1usize;
        let mut part = bytes / p as f64;
        while mask < p {
            let snapshot = last.clone();
            for er in 0..p {
                let peer_er = er ^ mask;
                if peer_er < er {
                    continue;
                }
                let a = eff_to_global(er, rem);
                let b = eff_to_global(peer_er, rem);
                let ta = sch.transfer(a, b, part, snapshot[a].into_iter().collect());
                let tb = sch.transfer(b, a, part, snapshot[b].into_iter().collect());
                last[a] = Some(tb);
                last[b] = Some(ta);
            }
            mask *= 2;
            part *= 2.0;
        }

        for er in 0..rem {
            let (even, odd) = (2 * er, 2 * er + 1);
            let t = sch.transfer(even, odd, bytes, last[even].into_iter().collect());
            last[odd] = Some(t);
        }
        sch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_cluster;

    #[test]
    fn correct_powers_of_two() {
        for n in [2, 4, 8, 16] {
            for len in [16, 33, 128] {
                let out = run_cluster(n, |c| {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| (c.rank() * 7 + i) as f32).collect();
                    HalvingDoubling.run(c, &mut buf);
                    buf
                });
                for (rk, b) in out.iter().enumerate() {
                    for i in 0..len {
                        let want: f32 = (0..n).map(|r| (r * 7 + i) as f32).sum();
                        assert!(
                            (b[i] - want).abs() < 1e-2 * want.abs().max(1.0),
                            "n={n} len={len} rank={rk} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn correct_non_powers() {
        for n in [3, 5, 6, 7, 12] {
            let len = 40;
            let out = run_cluster(n, |c| {
                let mut buf: Vec<f32> = (0..len).map(|i| (c.rank() + i) as f32).collect();
                HalvingDoubling.run(c, &mut buf);
                buf
            });
            for b in &out {
                for i in 0..len {
                    let want: f32 = (0..n).map(|r| (r + i) as f32).sum();
                    assert!((b[i] - want).abs() < 1e-2, "n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn odd_length_buffers() {
        // Halving splits must handle ranges that don't divide evenly.
        let out = run_cluster(4, |c| {
            let mut buf: Vec<f32> = (0..7).map(|i| (c.rank() * 10 + i) as f32).collect();
            HalvingDoubling.run(c, &mut buf);
            buf
        });
        for b in out {
            for i in 0..7 {
                let want: f32 = (0..4).map(|r| (r * 10 + i) as f32).sum();
                assert_eq!(b[i], want);
            }
        }
    }

    #[test]
    fn schedule_less_traffic_than_rdouble() {
        use super::super::{RecursiveDoubling, Allreduce as _};
        let cost = CostModel::default();
        let hd = HalvingDoubling.schedule(8, 8e6, &cost);
        let rd = RecursiveDoubling.schedule(8, 8e6, &cost);
        hd.validate();
        // HD moves 2·bytes·(1 - 1/p) per rank vs log2(p)·bytes for RD:
        // 14/24 of RD's traffic at p = 8.
        assert!(hd.total_bytes() < rd.total_bytes() * 0.6, "{} vs {}", hd.total_bytes(), rd.total_bytes());
    }
}
