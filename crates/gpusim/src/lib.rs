#![warn(missing_docs)]

//! # dcnn-gpusim — analytic accelerator and node performance models
//!
//! The paper's timing numbers come from NVIDIA P100 GPUs inside POWER8
//! "Minsky" nodes. We substitute an analytic *roofline* model: each layer
//! runs at `max(flops / (peak · efficiency(kind)), bytes / memory_bandwidth)`
//! — compute-bound kernels (convolutions, GEMM) are limited by utilization-
//! discounted peak FLOP/s, memory-bound kernels (BN, ReLU, pooling) by HBM2
//! bandwidth. Per-layer costs come from `dcnn-models`' census, so the timing
//! model and the trainable model describe the same network.
//!
//! Presets: [`DeviceModel::p100`] (the paper's GPU), [`DeviceModel::knl`]
//! (the Intel Knights Landing system of You et al., the paper's Table 2
//! comparator), and [`NodeModel::minsky`] (the paper's node).

pub mod device;
pub mod node;

pub use device::{DeviceModel, Direction};
pub use node::NodeModel;
