//! Roofline device model.

use dcnn_models::{LayerCost, LayerKind, ModelCensus};
use serde::{Deserialize, Serialize};

/// Forward or backward pass selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward pass.
    Fwd,
    /// Backward pass (data + weight gradients).
    Bwd,
}

/// An accelerator's roofline parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name for reports.
    pub name: String,
    /// Peak fp32 throughput, FLOP/s.
    pub peak_flops: f64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Host↔device bandwidth per direction, bytes/s (NVLink on Minsky).
    pub host_link_bw: f64,
    /// Device memory capacity, bytes.
    pub mem_capacity: f64,
    /// Achievable fraction of peak for implicit-GEMM convolutions.
    pub conv_eff: f64,
    /// Achievable fraction of peak for dense GEMM.
    pub gemm_eff: f64,
    /// Fixed kernel-launch overhead per layer invocation, seconds.
    pub launch_overhead: f64,
}

impl DeviceModel {
    /// NVIDIA P100 (SXM2) as in the paper: 10.6 TF fp32, 732 GB/s HBM2,
    /// NVLink to the POWER8 host at ~32 GB/s per direction, 16 GB.
    /// Efficiencies are typical cuDNN fractions of peak for these models.
    pub fn p100() -> Self {
        DeviceModel {
            name: "P100".into(),
            peak_flops: 10.6e12,
            mem_bw: 732e9,
            host_link_bw: 32e9,
            mem_capacity: 16e9,
            conv_eff: 0.50,
            gemm_eff: 0.65,
            launch_overhead: 8e-6,
        }
    }

    /// Intel Xeon Phi 7250 "Knights Landing" (You et al., Table 2): ~6.1 TF
    /// fp32, 400+ GB/s MCDRAM; no separate host link (self-hosted).
    pub fn knl() -> Self {
        DeviceModel {
            name: "KNL".into(),
            peak_flops: 6.1e12,
            mem_bw: 430e9,
            host_link_bw: f64::INFINITY,
            mem_capacity: 16e9,
            conv_eff: 0.35,
            gemm_eff: 0.55,
            launch_overhead: 4e-6,
        }
    }

    /// Seconds one layer takes for a batch of `n`, roofline style.
    pub fn layer_secs(&self, l: &LayerCost, n: usize, dir: Direction) -> f64 {
        let flops = match dir {
            Direction::Fwd => l.fwd_flops,
            Direction::Bwd => l.bwd_flops,
        } * n as f64;
        let bytes = l.bytes_touched * n as f64 * if dir == Direction::Bwd { 2.0 } else { 1.0 };
        let eff = match l.kind {
            LayerKind::Conv => self.conv_eff,
            LayerKind::Gemm => self.gemm_eff,
            // Memory-bound kernels: give them full peak so the bytes term
            // dominates, as on real hardware.
            LayerKind::Norm | LayerKind::Pointwise | LayerKind::Pool => 1.0,
        };
        (flops / (self.peak_flops * eff)).max(bytes / self.mem_bw) + self.launch_overhead
    }

    /// Forward time of a whole model for batch `n`.
    pub fn forward_secs(&self, census: &ModelCensus, n: usize) -> f64 {
        census.layers.iter().map(|l| self.layer_secs(l, n, Direction::Fwd)).sum()
    }

    /// Backward time of a whole model for batch `n`.
    pub fn backward_secs(&self, census: &ModelCensus, n: usize) -> f64 {
        census.layers.iter().map(|l| self.layer_secs(l, n, Direction::Bwd)).sum()
    }

    /// Forward+backward time for batch `n` (one training step's compute).
    pub fn train_step_secs(&self, census: &ModelCensus, n: usize) -> f64 {
        self.forward_secs(census, n) + self.backward_secs(census, n)
    }

    /// Time to move `bytes` across the host link (one direction).
    pub fn host_copy_secs(&self, bytes: f64) -> f64 {
        bytes / self.host_link_bw
    }

    /// Images/second this device sustains in training (fwd+bwd).
    pub fn train_throughput(&self, census: &ModelCensus, n: usize) -> f64 {
        n as f64 / self.train_step_secs(census, n)
    }

    /// Device-memory footprint of training with batch `n`: weights +
    /// gradients + momentum (3× params), every layer's stored forward
    /// activation (the census counts conv/BN/ReLU outputs separately, which
    /// is what non-in-place Torch materializes), a ~20% allowance for
    /// gradient buffers (shared/recycled, à la fb.resnet.torch's optnet),
    /// and a cuDNN-style workspace reserve.
    pub fn train_memory_bytes(&self, census: &ModelCensus, n: usize) -> f64 {
        let params = census.payload_bytes() * 3.0;
        let acts = census.activation_bytes() * n as f64 * 1.2;
        let workspace = 512e6;
        params + acts + workspace
    }

    /// Whether a training batch of `n` fits in device memory.
    pub fn fits_batch(&self, census: &ModelCensus, n: usize) -> bool {
        self.train_memory_bytes(census, n) <= self.mem_capacity
    }

    /// Largest batch that fits in device memory (0 if even batch 1 doesn't).
    pub fn max_batch(&self, census: &ModelCensus) -> usize {
        let mut lo = 0usize;
        let mut hi = 4096usize;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.fits_batch(census, mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_models::{googlenet_bn, resnet50};

    #[test]
    fn p100_resnet50_throughput_plausible() {
        // Published fb.resnet-style ResNet-50 training throughput on one
        // P100 is roughly 150–260 img/s. The model should land in range.
        let dev = DeviceModel::p100();
        let census = resnet50();
        let ips = dev.train_throughput(&census, 32);
        assert!(
            (120.0..=320.0).contains(&ips),
            "ResNet-50 on P100: {ips:.0} img/s"
        );
    }

    #[test]
    fn googlenet_faster_than_resnet() {
        // GoogLeNet-BN has about half the FLOPs of ResNet-50; Table 1 shows
        // its epochs running ~2× faster.
        let dev = DeviceModel::p100();
        let g = dev.train_throughput(&googlenet_bn(), 32);
        let r = dev.train_throughput(&resnet50(), 32);
        assert!(g > 1.4 * r, "googlenet {g:.0} vs resnet {r:.0} img/s");
    }

    #[test]
    fn bigger_batches_amortize_launch_overhead() {
        let dev = DeviceModel::p100();
        let census = resnet50();
        let t1 = dev.train_throughput(&census, 1);
        let t32 = dev.train_throughput(&census, 32);
        assert!(t32 > t1, "batch-32 {t32} should beat batch-1 {t1} img/s");
    }

    #[test]
    fn knl_slower_than_p100() {
        let census = resnet50();
        let p = DeviceModel::p100().train_throughput(&census, 32);
        let k = DeviceModel::knl().train_throughput(&census, 32);
        assert!(k < p, "KNL {k} vs P100 {p}");
    }

    #[test]
    fn memory_bound_layers_use_bandwidth() {
        let dev = DeviceModel::p100();
        let bn = LayerCost {
            name: "bn".into(),
            kind: LayerKind::Norm,
            params: 128,
            fwd_flops: 1e6,
            bwd_flops: 1.5e6,
            bytes_touched: 732e6, // exactly 1 ms at P100 bandwidth
            activation: 0,
        };
        let t = dev.layer_secs(&bn, 1, Direction::Fwd);
        assert!((t - 1e-3 - dev.launch_overhead).abs() < 1e-9, "t {t}");
    }

    #[test]
    fn backward_costs_more_than_forward() {
        let dev = DeviceModel::p100();
        let census = resnet50();
        assert!(dev.backward_secs(&census, 16) > dev.forward_secs(&census, 16));
    }

    #[test]
    fn paper_batch_sizes_fit_p100_memory() {
        // §5 uses 64 images/GPU for the node-count experiments and 32/GPU
        // for the 256-GPU record run; both must fit a 16 GB P100 for
        // ResNet-50, and the maximum should be in a plausible range (real
        // fb.resnet.torch fits batch ~96–128 on 16 GB).
        let dev = DeviceModel::p100();
        let census = resnet50();
        assert!(dev.fits_batch(&census, 32));
        assert!(dev.fits_batch(&census, 64));
        let max = dev.max_batch(&census);
        assert!((64..=256).contains(&max), "max batch {max}");
        assert!(!dev.fits_batch(&census, max + 1));
    }

    #[test]
    fn memory_scales_with_batch() {
        let dev = DeviceModel::p100();
        let census = googlenet_bn();
        let m32 = dev.train_memory_bytes(&census, 32);
        let m64 = dev.train_memory_bytes(&census, 64);
        assert!(m64 > m32);
        // Fixed overhead means it is affine, not proportional.
        assert!(m64 < 2.0 * m32);
    }

    #[test]
    fn host_copy_time() {
        let dev = DeviceModel::p100();
        // A 64-image 224² fp32 batch is ~38.5 MB; ~1.2 ms over NVLink.
        let bytes = 64.0 * 3.0 * 224.0 * 224.0 * 4.0;
        let t = dev.host_copy_secs(bytes);
        assert!((1e-3..3e-3).contains(&t), "copy {t}");
    }
}
