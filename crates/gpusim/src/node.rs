//! Node-level model: host CPU, memory, attached GPUs.

use serde::{Deserialize, Serialize};

use crate::device::DeviceModel;

/// A compute node ("learner" in the paper's terminology).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeModel {
    /// Node name for reports.
    pub name: String,
    /// GPUs per node (m in Algorithm 1).
    pub gpus: usize,
    /// The GPU model.
    pub device: DeviceModel,
    /// Host cores available to data loading ("donkey" threads in Torch).
    pub cores: usize,
    /// Host memory, bytes (256 GB on Minsky — what DIMD partitions live in).
    pub host_mem: f64,
    /// Host JPEG-decode throughput per core, bytes of *compressed* input/s.
    pub decode_bw_per_core: f64,
    /// Host-side memcpy/summation bandwidth, bytes/s (used for the
    /// intra-node gradient reduction the paper performs before MPI).
    pub host_reduce_bw: f64,
}

impl NodeModel {
    /// The paper's POWER8 Minsky node: 20 cores, 256 GB, 4× P100.
    pub fn minsky() -> Self {
        NodeModel {
            name: "Minsky".into(),
            gpus: 4,
            device: DeviceModel::p100(),
            cores: 20,
            host_mem: 256e9,
            decode_bw_per_core: 60e6,
            host_reduce_bw: 20e9,
        }
    }

    /// You et al.'s KNL node (self-hosted: 1 "GPU" = the KNL itself).
    pub fn knl_node() -> Self {
        NodeModel {
            name: "KNL".into(),
            gpus: 1,
            device: DeviceModel::knl(),
            cores: 68,
            host_mem: 96e9,
            decode_bw_per_core: 40e6,
            host_reduce_bw: 15e9,
        }
    }

    /// Aggregate decode throughput with `threads` donkey threads (capped at
    /// the core count).
    pub fn decode_bw(&self, threads: usize) -> f64 {
        self.decode_bw_per_core * threads.min(self.cores) as f64
    }

    /// Seconds for the intra-node gradient summation of `bytes` across the
    /// node's GPUs (tree reduction over the host: ⌈log₂ m⌉ passes).
    pub fn intra_node_reduce_secs(&self, bytes: f64) -> f64 {
        if self.gpus <= 1 {
            return 0.0;
        }
        let rounds = (self.gpus as f64).log2().ceil();
        // Each round moves the payload over the host link and sums it.
        rounds * (bytes / self.device.host_link_bw + bytes / self.host_reduce_bw)
    }

    /// Seconds to broadcast updated gradients back to all GPUs (paper
    /// Algorithm 1's final broadcast step).
    pub fn intra_node_bcast_secs(&self, bytes: f64) -> f64 {
        if self.gpus <= 1 {
            return 0.0;
        }
        // All GPUs pull concurrently over their own links; host egress is
        // the bottleneck only if shared — Minsky gives each GPU its own
        // NVLink brick, so one transfer time suffices.
        bytes / self.device.host_link_bw
    }

    /// Whether a dataset partition of `bytes` fits in host memory alongside
    /// a working-set reserve.
    pub fn fits_in_memory(&self, bytes: f64) -> bool {
        bytes <= self.host_mem * 0.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minsky_preset() {
        let n = NodeModel::minsky();
        assert_eq!(n.gpus, 4);
        assert_eq!(n.cores, 20);
        assert!(n.fits_in_memory(74e9)); // ImageNet-1k DIMD blob
        assert!(!n.fits_in_memory(300e9)); // ImageNet-22k needs partitioning
    }

    #[test]
    fn decode_scales_with_threads_then_caps() {
        let n = NodeModel::minsky();
        assert_eq!(n.decode_bw(2), 2.0 * n.decode_bw_per_core);
        assert_eq!(n.decode_bw(100), 20.0 * n.decode_bw_per_core);
    }

    #[test]
    fn intra_node_reduce_grows_with_payload() {
        let n = NodeModel::minsky();
        let t1 = n.intra_node_reduce_secs(93e6);
        let t2 = n.intra_node_reduce_secs(186e6);
        assert!(t1 > 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 93 MB over 2 rounds of (NVLink + host sum) ≈ 15 ms.
        assert!((0.005..0.05).contains(&t1), "reduce {t1}");
    }

    #[test]
    fn single_gpu_node_has_no_reduction() {
        let n = NodeModel::knl_node();
        assert_eq!(n.intra_node_reduce_secs(1e9), 0.0);
        assert_eq!(n.intra_node_bcast_secs(1e9), 0.0);
    }
}
