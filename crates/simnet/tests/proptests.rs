//! Property-based tests for the fluid-flow simulator.

use dcnn_simnet::{CommSchedule, FatTree, FatTreeConfig, SimOptions};
use proptest::prelude::*;

fn arb_topo() -> impl Strategy<Value = FatTree> {
    (2usize..=16, 1usize..=2, 1usize..=4).prop_map(|(nodes, nics, spines)| {
        FatTree::new(FatTreeConfig {
            nodes,
            leaf_radix: 4,
            spines,
            nics_per_node: nics,
            nic_bandwidth: 1e9,
            latency: 1e-6,
            oversubscription: 1.0,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every byte requested is delivered: sum of per-link bytes equals the
    /// sum over transfers of bytes × path length.
    #[test]
    fn flow_conservation(topo in arb_topo(), specs in prop::collection::vec((0usize..16, 0usize..16, 1u32..1_000_000), 1..20)) {
        let n = topo.nodes();
        let mut s = CommSchedule::new(n);
        let mut expected = 0.0;
        for (i, (src, dst, bytes)) in specs.iter().enumerate() {
            let (src, dst) = (src % n, dst % n);
            let id = s.transfer(src, dst, *bytes as f64, vec![]);
            // The engine salts routes by op id, so recompute the path length
            // the same way it will.
            expected += *bytes as f64 * topo.route(src, dst, id as u64).len() as f64;
            let _ = i;
        }
        let rep = s.simulate(&topo, &SimOptions::default());
        let total: f64 = rep.link_bytes.iter().sum();
        prop_assert!((total - expected).abs() <= 1e-6 * expected.max(1.0),
            "delivered {total}, expected {expected}");
    }

    /// Finish times respect dependencies in randomly generated DAGs.
    #[test]
    fn dependencies_respected(topo in arb_topo(), n_ops in 2usize..30, seed in 0u64..1000) {
        let n = topo.nodes();
        let mut s = CommSchedule::new(n);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || { state ^= state << 13; state ^= state >> 7; state ^= state << 17; state };
        for id in 0..n_ops {
            let mut deps = Vec::new();
            if id > 0 && next() % 2 == 0 {
                deps.push((next() as usize) % id);
            }
            if next() % 2 == 0 {
                s.compute((next() as usize) % n, (next() % 100) as f64 * 1e-4, deps);
            } else {
                s.transfer((next() as usize) % n, (next() as usize) % n, (next() % 100_000) as f64, deps);
            }
        }
        let rep = s.simulate(&topo, &SimOptions::default());
        for (id, op) in s.ops().iter().enumerate() {
            for &d in &op.deps {
                prop_assert!(rep.finish[id] >= rep.finish[d] - 1e-12,
                    "op {id} finished at {} before dep {d} at {}", rep.finish[id], rep.finish[d]);
            }
        }
        prop_assert!(rep.makespan >= 0.0);
    }

    /// Adding more concurrent flows on one sender never speeds up the last
    /// finisher (work-conservation sanity).
    #[test]
    fn more_flows_never_faster(topo in arb_topo(), k in 1usize..6) {
        let n = topo.nodes();
        prop_assume!(n >= 2);
        let bytes = 1e8;
        let mk = |m: usize| {
            let mut s = CommSchedule::new(n);
            for i in 0..m {
                s.transfer(0, 1 + (i % (n - 1)), bytes, vec![]);
            }
            s.simulate(&topo, &SimOptions::default()).makespan
        };
        prop_assert!(mk(k + 1) >= mk(k) - 1e-9);
    }

    /// Makespan scales linearly with message size for a single flow (fluid
    /// model has no artifacts).
    #[test]
    fn single_flow_linear_in_bytes(topo in arb_topo(), mb in 1u32..64) {
        let n = topo.nodes();
        prop_assume!(n >= 2);
        let lat = topo.path_latency(0, n - 1);
        let one = {
            let mut s = CommSchedule::new(n);
            s.transfer(0, n - 1, 1e6, vec![]);
            s.simulate(&topo, &SimOptions::default()).makespan - lat
        };
        let many = {
            let mut s = CommSchedule::new(n);
            s.transfer(0, n - 1, mb as f64 * 1e6, vec![]);
            s.simulate(&topo, &SimOptions::default()).makespan - lat
        };
        prop_assert!((many / one - mb as f64).abs() < 1e-6, "ratio {}", many / one);
    }
}
