#![warn(missing_docs)]

//! # dcnn-simnet — fluid-flow cluster network simulator
//!
//! This crate provides the timing substrate used to reproduce the performance
//! figures of *Kumar et al., "Efficient Training of Convolutional Neural Nets
//! on Large Distributed Systems" (CLUSTER 2018)*. The paper's evaluation ran
//! on a 32-node POWER8 "Minsky" cluster whose nodes are connected by a
//! fat-tree InfiniBand fabric (2× Mellanox ConnectX-5, 100 Gbps each). We do
//! not have that fabric, so we model it:
//!
//! * [`FatTree`] — a two-level fat-tree topology: nodes attach to leaf
//!   switches, leaf switches attach to spine switches. Every directed link
//!   has a bandwidth and the fabric has a per-hop latency. The default
//!   configuration is non-blocking (full bisection bandwidth), matching the
//!   paper's observation that "all the connections are symmetrical in the
//!   cluster" (§5.2).
//! * [`CommSchedule`] — a DAG of point-to-point transfers and per-rank compute
//!   (e.g. reduction summation) operations. Collective algorithms in
//!   `dcnn-collectives` compile themselves into such schedules.
//! * [`simulate`](CommSchedule::simulate) — a discrete-event engine that
//!   executes a schedule in virtual time. Concurrent transfers share link
//!   bandwidth **max-min fairly** (progressive filling), the standard fluid
//!   approximation for congestion-controlled fabrics; rates are recomputed
//!   whenever a flow starts or finishes.
//!
//! The absolute numbers produced are parameterized by [`FatTreeConfig`]; the
//! *relative* behaviour (which collective wins at which message size, how
//! shuffles scale with node count) is determined by algorithm structure and
//! contention, which is what the paper's figures demonstrate.

pub mod engine;
pub mod maxmin;
pub mod schedule;
pub mod topology;
pub mod total;

pub use engine::{critical_path, SimOptions, SimReport};
pub use schedule::{CommSchedule, Op, OpId, OpKind};
pub use topology::{FatTree, FatTreeConfig, LinkId, NodeId};
pub use total::TotalF64;

/// Convert gigabits per second to bytes per second.
pub fn gbps_to_bytes_per_sec(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0
}

/// Convert a byte count and a duration in seconds to achieved gigabits/s.
pub fn throughput_gbps(bytes: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return f64::INFINITY;
    }
    bytes * 8.0 / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_roundtrip() {
        let bps = gbps_to_bytes_per_sec(100.0);
        assert!((bps - 12.5e9).abs() < 1.0);
        let g = throughput_gbps(12.5e9, 1.0);
        assert!((g - 100.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_zero_time_is_infinite() {
        assert!(throughput_gbps(10.0, 0.0).is_infinite());
    }
}
