//! A totally ordered wrapper for finite `f64` times.
//!
//! Simulation timestamps are always finite and non-negative, so we can give
//! them a total order and use them as keys in the event heap.

use std::cmp::Ordering;

/// An `f64` with a total order. Panics on construction from NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// Wrap a finite float. NaN is a logic error in the simulator.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN timestamp in simulator");
        TotalF64(v)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: constructor rejects NaN.
        self.0.partial_cmp(&other.0).expect("NaN timestamp")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_floats() {
        let a = TotalF64::new(1.0);
        let b = TotalF64::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(TotalF64::new(0.0), TotalF64::new(0.0));
    }

    #[test]
    fn infinity_is_allowed_and_largest() {
        let inf = TotalF64::new(f64::INFINITY);
        assert!(TotalF64::new(1e300) < inf);
    }

    #[test]
    #[should_panic]
    fn nan_panics() {
        let _ = TotalF64::new(f64::NAN);
    }
}
