//! Communication schedules: DAGs of transfers and compute operations.
//!
//! A collective algorithm (ring, multi-color tree, recursive doubling, …)
//! compiles into a [`CommSchedule`]: every point-to-point message becomes a
//! [`OpKind::Transfer`], and every local reduction (summing a received chunk
//! into an accumulation buffer — what the paper does with altivec
//! instructions) becomes a [`OpKind::Compute`]. Dependencies express the
//! algorithm's ordering: a parent in a reduction tree cannot forward a chunk
//! before it has received and summed its children's contributions.

use crate::topology::NodeId;

/// Identifier of an operation within a schedule.
pub type OpId = usize;

/// One node of the schedule DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Move `bytes` from `src` to `dst` over the fabric.
    Transfer {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Payload size in bytes.
        bytes: f64,
    },
    /// Occupy `rank`'s local compute resource for `secs` seconds
    /// (e.g. summing a received buffer into the local accumulation).
    Compute {
        /// Node performing the work.
        rank: NodeId,
        /// Duration of the work.
        secs: f64,
    },
}

/// An operation plus the operations it must wait for.
#[derive(Debug, Clone)]
pub struct Op {
    /// What the operation does.
    pub kind: OpKind,
    /// Operations that must complete before this one starts.
    pub deps: Vec<OpId>,
}

/// A DAG of operations over `n_ranks` nodes.
#[derive(Debug, Clone, Default)]
pub struct CommSchedule {
    ops: Vec<Op>,
    n_ranks: usize,
}

impl CommSchedule {
    /// Empty schedule over `n_ranks` nodes.
    pub fn new(n_ranks: usize) -> Self {
        CommSchedule { ops: Vec::new(), n_ranks }
    }

    /// Number of ranks (nodes) this schedule involves.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// All operations, indexable by [`OpId`].
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Add a transfer; returns its id. Dependencies must already exist.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: f64, deps: Vec<OpId>) -> OpId {
        assert!(src < self.n_ranks && dst < self.n_ranks, "transfer endpoint out of range");
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.push(Op { kind: OpKind::Transfer { src, dst, bytes }, deps })
    }

    /// Add a compute op; returns its id. Dependencies must already exist.
    pub fn compute(&mut self, rank: NodeId, secs: f64, deps: Vec<OpId>) -> OpId {
        assert!(rank < self.n_ranks, "compute rank out of range");
        assert!(secs >= 0.0 && secs.is_finite());
        self.push(Op { kind: OpKind::Compute { rank, secs }, deps })
    }

    fn push(&mut self, op: Op) -> OpId {
        let id = self.ops.len();
        for &d in &op.deps {
            assert!(d < id, "dependency {d} does not precede op {id}");
        }
        self.ops.push(op);
        id
    }

    /// Merge another schedule into this one (op ids of `other` are shifted).
    /// Returns the id offset applied to `other`'s ops.
    pub fn append(&mut self, other: &CommSchedule) -> usize {
        assert_eq!(self.n_ranks, other.n_ranks, "rank-count mismatch on append");
        let off = self.ops.len();
        for op in &other.ops {
            let mut shifted = op.clone();
            for d in &mut shifted.deps {
                *d += off;
            }
            self.ops.push(shifted);
        }
        off
    }

    /// Append `other` — a schedule over `map.len()` *logical* ranks — with
    /// logical rank `i` placed on this schedule's rank `map[i]`, and with
    /// every dependency-free op of `other` made to wait for `entry[rank]` of
    /// the rank that initiates it (the sender of a transfer, the owner of a
    /// compute). This is how phases compose: e.g. a leaders-only allreduce
    /// embedded after per-group reductions.
    pub fn append_embedded(
        &mut self,
        other: &CommSchedule,
        map: &[usize],
        entry: &[Option<OpId>],
    ) -> usize {
        assert_eq!(map.len(), other.n_ranks, "map must cover other's ranks");
        assert_eq!(entry.len(), self.n_ranks, "entry deps are per physical rank");
        for &p in map {
            assert!(p < self.n_ranks, "mapped rank out of range");
        }
        let off = self.ops.len();
        for op in &other.ops {
            let initiator = match op.kind {
                OpKind::Transfer { src, .. } => map[src],
                OpKind::Compute { rank, .. } => map[rank],
            };
            let kind = match op.kind {
                OpKind::Transfer { src, dst, bytes } => {
                    OpKind::Transfer { src: map[src], dst: map[dst], bytes }
                }
                OpKind::Compute { rank, secs } => OpKind::Compute { rank: map[rank], secs },
            };
            let mut deps: Vec<OpId> = op.deps.iter().map(|d| d + off).collect();
            if deps.is_empty() {
                if let Some(e) = entry[initiator] {
                    deps.push(e);
                }
            }
            self.ops.push(Op { kind, deps });
        }
        off
    }

    /// Total bytes transferred by all `Transfer` ops.
    pub fn total_bytes(&self) -> f64 {
        self.ops
            .iter()
            .map(|op| match op.kind {
                OpKind::Transfer { bytes, .. } => bytes,
                OpKind::Compute { .. } => 0.0,
            })
            .sum()
    }

    /// Rewrite every rank through `perm` (`new_rank = perm[old_rank]`) —
    /// models placing logical ranks onto different physical nodes of the
    /// fabric. The paper notes its multi-color trees minimize contention
    /// when colors map to consecutive fat-tree nodes but still utilize links
    /// well "with nodes arbitrarily mapped" (§4.2); this makes that claim
    /// testable for any schedule.
    ///
    /// # Panics
    /// Panics unless `perm` is a permutation of `0..n_ranks`.
    pub fn remap(&self, perm: &[usize]) -> CommSchedule {
        assert_eq!(perm.len(), self.n_ranks, "permutation length mismatch");
        let mut seen = vec![false; self.n_ranks];
        for &p in perm {
            assert!(p < self.n_ranks && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let ops = self
            .ops
            .iter()
            .map(|op| Op {
                kind: match op.kind {
                    OpKind::Transfer { src, dst, bytes } => {
                        OpKind::Transfer { src: perm[src], dst: perm[dst], bytes }
                    }
                    OpKind::Compute { rank, secs } => {
                        OpKind::Compute { rank: perm[rank], secs }
                    }
                },
                deps: op.deps.clone(),
            })
            .collect();
        CommSchedule { ops, n_ranks: self.n_ranks }
    }

    /// Validate that ids form a DAG by construction (deps always precede) and
    /// that endpoints are within range. Returns the op count.
    pub fn validate(&self) -> usize {
        for (id, op) in self.ops.iter().enumerate() {
            for &d in &op.deps {
                assert!(d < id);
            }
            match op.kind {
                OpKind::Transfer { src, dst, bytes } => {
                    assert!(src < self.n_ranks && dst < self.n_ranks);
                    assert!(bytes >= 0.0);
                }
                OpKind::Compute { rank, secs } => {
                    assert!(rank < self.n_ranks);
                    assert!(secs >= 0.0);
                }
            }
        }
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_chain() {
        let mut s = CommSchedule::new(4);
        let a = s.transfer(0, 1, 100.0, vec![]);
        let b = s.compute(1, 0.5, vec![a]);
        let c = s.transfer(1, 2, 100.0, vec![b]);
        assert_eq!(c, 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.validate(), 3);
        assert!((s.total_bytes() - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn forward_dependency_panics() {
        let mut s = CommSchedule::new(2);
        s.transfer(0, 1, 1.0, vec![5]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint_panics() {
        let mut s = CommSchedule::new(2);
        s.transfer(0, 2, 1.0, vec![]);
    }

    #[test]
    fn append_shifts_dependencies() {
        let mut a = CommSchedule::new(2);
        a.transfer(0, 1, 1.0, vec![]);
        let mut b = CommSchedule::new(2);
        let t = b.transfer(1, 0, 2.0, vec![]);
        b.compute(0, 0.1, vec![t]);
        let off = a.append(&b);
        assert_eq!(off, 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.ops()[2].deps, vec![1]);
        a.validate();
    }

    #[test]
    fn empty_schedule() {
        let s = CommSchedule::new(1);
        assert!(s.is_empty());
        assert_eq!(s.total_bytes(), 0.0);
    }

    #[test]
    fn remap_rewrites_endpoints() {
        let mut s = CommSchedule::new(3);
        let a = s.transfer(0, 1, 5.0, vec![]);
        s.compute(2, 0.1, vec![a]);
        let r = s.remap(&[2, 0, 1]);
        match r.ops()[0].kind {
            OpKind::Transfer { src, dst, bytes } => {
                assert_eq!((src, dst), (2, 0));
                assert_eq!(bytes, 5.0);
            }
            _ => panic!("expected transfer"),
        }
        match r.ops()[1].kind {
            OpKind::Compute { rank, .. } => assert_eq!(rank, 1),
            _ => panic!("expected compute"),
        }
        assert_eq!(r.ops()[1].deps, vec![0]);
        r.validate();
    }

    #[test]
    fn identity_remap_is_noop() {
        let mut s = CommSchedule::new(4);
        s.transfer(1, 3, 7.0, vec![]);
        let r = s.remap(&[0, 1, 2, 3]);
        assert_eq!(r.ops()[0].kind, s.ops()[0].kind);
    }

    #[test]
    #[should_panic]
    fn non_permutation_panics() {
        let s = CommSchedule::new(3);
        let _ = s.remap(&[0, 0, 1]);
    }
}
