//! Two-level fat-tree topology.
//!
//! Nodes attach to leaf switches; leaf switches attach to every spine switch.
//! Each *directed* link has its own capacity, so full-duplex traffic does not
//! self-interfere. A node can have several NICs (the paper's Minsky nodes have
//! two ConnectX-5 adapters); traffic from a node is spread across its NICs by
//! a deterministic hash of the flow endpoints, like ECMP routing does.

use serde::{Deserialize, Serialize};

/// Index of a compute node (an MPI rank in the paper's setup: one learner per node).
pub type NodeId = usize;
/// Index of a directed link in the fabric.
pub type LinkId = usize;

/// Configuration for a [`FatTree`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTreeConfig {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Down-ports per leaf switch (nodes per leaf).
    pub leaf_radix: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// NICs per node. The paper's nodes have two 100 Gbps ConnectX-5 adapters.
    pub nics_per_node: usize,
    /// Bandwidth of one node-NIC link, bytes/second, per direction.
    pub nic_bandwidth: f64,
    /// One-way latency of a path through the fabric, seconds.
    pub latency: f64,
    /// Over-subscription factor of the leaf→spine tier. `1.0` is non-blocking
    /// (full bisection); `2.0` halves the uplink capacity, etc.
    pub oversubscription: f64,
}

impl FatTreeConfig {
    /// The paper's fabric: 100 Gbps links, 2 NICs per node, non-blocking,
    /// 8 nodes per leaf, 1.5 µs one-way latency (typical EDR InfiniBand).
    pub fn minsky(nodes: usize) -> Self {
        FatTreeConfig {
            nodes,
            leaf_radix: 8,
            spines: 4,
            nics_per_node: 2,
            nic_bandwidth: crate::gbps_to_bytes_per_sec(100.0),
            latency: 1.5e-6,
            oversubscription: 1.0,
        }
    }
}

/// A built fat-tree with enumerated directed links.
///
/// Link layout (all directed):
/// * `node_up[node][nic]`   — node → its leaf switch
/// * `node_down[node][nic]` — leaf switch → node
/// * `leaf_up[leaf][spine]` — leaf → spine
/// * `leaf_down[leaf][spine]` — spine → leaf
#[derive(Debug, Clone)]
pub struct FatTree {
    cfg: FatTreeConfig,
    n_leaves: usize,
    caps: Vec<f64>,
    // base offsets into the link table
    node_up_base: usize,
    node_down_base: usize,
    leaf_up_base: usize,
    leaf_down_base: usize,
}

impl FatTree {
    /// Build the fabric described by `cfg`.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(cfg: FatTreeConfig) -> Self {
        assert!(cfg.nodes > 0, "fat-tree needs at least one node");
        assert!(cfg.leaf_radix > 0 && cfg.spines > 0 && cfg.nics_per_node > 0);
        assert!(cfg.nic_bandwidth > 0.0 && cfg.oversubscription > 0.0);
        let n_leaves = cfg.nodes.div_ceil(cfg.leaf_radix);
        let node_up_base = 0;
        let node_down_base = node_up_base + cfg.nodes * cfg.nics_per_node;
        let leaf_up_base = node_down_base + cfg.nodes * cfg.nics_per_node;
        let leaf_down_base = leaf_up_base + n_leaves * cfg.spines;
        let n_links = leaf_down_base + n_leaves * cfg.spines;

        let mut caps = vec![0.0; n_links];
        for l in 0..cfg.nodes * cfg.nics_per_node {
            caps[node_up_base + l] = cfg.nic_bandwidth;
            caps[node_down_base + l] = cfg.nic_bandwidth;
        }
        // A non-blocking leaf offers as much up-capacity as down-capacity:
        // leaf_radix * nics * nic_bw total, divided over `spines` uplinks.
        let uplink_cap = cfg.leaf_radix as f64 * cfg.nics_per_node as f64 * cfg.nic_bandwidth
            / cfg.spines as f64
            / cfg.oversubscription;
        for l in 0..n_leaves * cfg.spines {
            caps[leaf_up_base + l] = uplink_cap;
            caps[leaf_down_base + l] = uplink_cap;
        }

        FatTree {
            cfg,
            n_leaves,
            caps,
            node_up_base,
            node_down_base,
            leaf_up_base,
            leaf_down_base,
        }
    }

    /// Convenience: the paper's fabric at a given node count.
    pub fn minsky(nodes: usize) -> Self {
        Self::new(FatTreeConfig::minsky(nodes))
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &FatTreeConfig {
        &self.cfg
    }

    /// Number of compute nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Number of leaf switches.
    pub fn leaves(&self) -> usize {
        self.n_leaves
    }

    /// Number of directed links.
    pub fn n_links(&self) -> usize {
        self.caps.len()
    }

    /// Capacity (bytes/s) of a directed link.
    pub fn capacity(&self, l: LinkId) -> f64 {
        self.caps[l]
    }

    /// Scale a link's capacity by `factor` (fault/degradation injection:
    /// a flapping cable, a congested uplink). `factor` must be positive.
    pub fn degrade_link(&mut self, l: LinkId, factor: f64) {
        assert!(factor > 0.0, "capacity factor must be positive");
        self.caps[l] *= factor;
    }

    /// Degrade both directions of a node's NIC links by `factor`.
    pub fn degrade_node(&mut self, node: NodeId, factor: f64) {
        for nic in 0..self.cfg.nics_per_node {
            let up = self.node_up(node, nic);
            let down = self.node_down(node, nic);
            self.degrade_link(up, factor);
            self.degrade_link(down, factor);
        }
    }

    /// All link capacities.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Per-hop latency in seconds.
    pub fn latency(&self) -> f64 {
        self.cfg.latency
    }

    /// One-way latency of the `src → dst` path: per-hop latency × switch
    /// hops (1 intra-leaf, 3 across the spine; 0 for self-messages).
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> f64 {
        self.cfg.latency * self.hops(src, dst) as f64
    }

    /// Leaf switch a node is attached to.
    pub fn leaf_of(&self, node: NodeId) -> usize {
        node / self.cfg.leaf_radix
    }

    fn node_up(&self, node: NodeId, nic: usize) -> LinkId {
        self.node_up_base + node * self.cfg.nics_per_node + nic
    }

    fn node_down(&self, node: NodeId, nic: usize) -> LinkId {
        self.node_down_base + node * self.cfg.nics_per_node + nic
    }

    fn leaf_up(&self, leaf: usize, spine: usize) -> LinkId {
        self.leaf_up_base + leaf * self.cfg.spines + spine
    }

    fn leaf_down(&self, leaf: usize, spine: usize) -> LinkId {
        self.leaf_down_base + leaf * self.cfg.spines + spine
    }

    /// Deterministic ECMP-style selector (splitmix64 over the flow key).
    fn hash_select(src: NodeId, dst: NodeId, salt: u64, modulo: usize) -> usize {
        let mut x = (src as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((dst as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % modulo as u64) as usize
    }

    /// The directed links a `src → dst` flow traverses. `salt` distinguishes
    /// concurrent flows between the same endpoints so they can be spread over
    /// different NICs/spines (like distinct QPs hashing to different paths).
    ///
    /// A self-flow (`src == dst`) stays in node memory and uses no links.
    pub fn route(&self, src: NodeId, dst: NodeId, salt: u64) -> Vec<LinkId> {
        assert!(src < self.cfg.nodes && dst < self.cfg.nodes, "route endpoint out of range");
        if src == dst {
            return Vec::new();
        }
        let nic_s = Self::hash_select(src, dst, salt, self.cfg.nics_per_node);
        let nic_d = Self::hash_select(src, dst, salt.wrapping_add(1), self.cfg.nics_per_node);
        let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
        if ls == ld {
            vec![self.node_up(src, nic_s), self.node_down(dst, nic_d)]
        } else {
            let spine = Self::hash_select(src, dst, salt.wrapping_add(2), self.cfg.spines);
            vec![
                self.node_up(src, nic_s),
                self.leaf_up(ls, spine),
                self.leaf_down(ld, spine),
                self.node_down(dst, nic_d),
            ]
        }
    }

    /// Number of switch hops on the path (for latency modelling: 1 intra-leaf,
    /// 3 inter-leaf). Self-flows have zero hops.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            0
        } else if self.leaf_of(src) == self.leaf_of(dst) {
            1
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minsky_32() {
        let t = FatTree::minsky(32);
        assert_eq!(t.nodes(), 32);
        assert_eq!(t.leaves(), 4);
        // 32*2 up + 32*2 down + 4*4 up + 4*4 down
        assert_eq!(t.n_links(), 64 + 64 + 16 + 16);
        assert!((t.capacity(0) - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn nonblocking_uplink_capacity() {
        let t = FatTree::minsky(32);
        // leaf aggregate up = 8 nodes * 2 nics * 12.5 GB/s = 200 GB/s over 4 spines
        let cfg = t.config().clone();
        let up = t.capacity(t.leaf_up(0, 0));
        let expect = 8.0 * 2.0 * cfg.nic_bandwidth / 4.0;
        assert!((up - expect).abs() < 1.0);
    }

    #[test]
    fn self_route_is_empty() {
        let t = FatTree::minsky(8);
        assert!(t.route(3, 3, 0).is_empty());
        assert_eq!(t.hops(3, 3), 0);
    }

    #[test]
    fn intra_leaf_route_has_two_links() {
        let t = FatTree::minsky(32);
        let r = t.route(0, 1, 0);
        assert_eq!(r.len(), 2);
        assert_eq!(t.hops(0, 1), 1);
    }

    #[test]
    fn inter_leaf_route_has_four_links() {
        let t = FatTree::minsky(32);
        let r = t.route(0, 31, 0);
        assert_eq!(r.len(), 4);
        assert_eq!(t.hops(0, 31), 3);
    }

    #[test]
    fn routes_are_deterministic_and_salt_sensitive() {
        let t = FatTree::minsky(32);
        assert_eq!(t.route(0, 31, 7), t.route(0, 31, 7));
        // Over many salts, at least two distinct paths should appear
        let mut seen = std::collections::HashSet::new();
        for salt in 0..64 {
            seen.insert(t.route(0, 31, salt));
        }
        assert!(seen.len() > 1, "ECMP hashing should spread flows");
    }

    #[test]
    fn route_links_in_range() {
        let t = FatTree::minsky(17); // odd size, partial leaf
        for s in 0..17 {
            for d in 0..17 {
                for l in t.route(s, d, 42) {
                    assert!(l < t.n_links());
                    assert!(t.capacity(l) > 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn route_out_of_range_panics() {
        let t = FatTree::minsky(4);
        let _ = t.route(0, 4, 0);
    }

    #[test]
    fn oversubscription_reduces_uplinks() {
        let mut cfg = FatTreeConfig::minsky(32);
        cfg.oversubscription = 2.0;
        let t2 = FatTree::new(cfg);
        let t1 = FatTree::minsky(32);
        let up2 = t2.capacity(t2.leaf_up(0, 0));
        let up1 = t1.capacity(t1.leaf_up(0, 0));
        assert!((up1 / up2 - 2.0).abs() < 1e-9);
    }
}
