//! Max-min fair rate allocation (progressive filling / water-filling).
//!
//! Given a set of flows, each traversing a set of capacitated links, assign
//! each flow a rate such that no flow can be increased without decreasing a
//! flow with an equal or smaller rate. This is the classic fluid model of a
//! fabric with per-flow fairness, and is how we approximate InfiniBand
//! congestion behaviour between rate recomputation events.

use crate::topology::LinkId;

/// Compute max-min fair rates.
///
/// * `paths[f]` — the links flow `f` traverses. A flow with an empty path is
///   unconstrained and gets `f64::INFINITY`.
/// * `caps[l]` — capacity of link `l` (bytes/s).
///
/// Returns one rate per flow. Runs in `O(iterations × (F + L))` where the
/// number of iterations is bounded by the number of distinct bottlenecks.
pub fn maxmin_rates(paths: &[Vec<LinkId>], caps: &[f64]) -> Vec<f64> {
    let nf = paths.len();
    let nl = caps.len();
    let mut rates = vec![f64::INFINITY; nf];
    if nf == 0 {
        return rates;
    }

    // Remaining capacity and number of unfrozen flows per link.
    let mut rem = caps.to_vec();
    let mut count = vec![0usize; nl];
    let mut frozen = vec![false; nf];
    let mut n_unfrozen = 0usize;
    for (f, p) in paths.iter().enumerate() {
        if p.is_empty() {
            frozen[f] = true; // unconstrained
        } else {
            n_unfrozen += 1;
            for &l in p {
                count[l] += 1;
            }
        }
    }

    while n_unfrozen > 0 {
        // Bottleneck link: minimal fair share among links with unfrozen flows.
        let mut best: Option<(f64, LinkId)> = None;
        for l in 0..nl {
            if count[l] > 0 {
                let share = rem[l].max(0.0) / count[l] as f64;
                if best.is_none_or(|(s, _)| share < s) {
                    best = Some((share, l));
                }
            }
        }
        let (share, bottleneck) = best.expect("unfrozen flows must cross some link");

        // Freeze every unfrozen flow crossing the bottleneck at `share`.
        let mut froze_any = false;
        for f in 0..nf {
            if !frozen[f] && paths[f].contains(&bottleneck) {
                frozen[f] = true;
                froze_any = true;
                n_unfrozen -= 1;
                rates[f] = share;
                for &l in &paths[f] {
                    rem[l] -= share;
                    count[l] -= 1;
                }
            }
        }
        debug_assert!(froze_any, "bottleneck had a positive flow count");
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = maxmin_rates(&[vec![0]], &[10.0]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_a_link_equally() {
        let rates = maxmin_rates(&[vec![0], vec![0]], &[10.0]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let rates = maxmin_rates(&[vec![], vec![0]], &[4.0]);
        assert!(rates[0].is_infinite());
        assert!((rates[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn classic_waterfilling_example() {
        // Link 0 (cap 1) carries flows A,B; link 1 (cap 10) carries B,C.
        // A = 0.5, B = 0.5 (bottleneck link 0), C = 9.5.
        let rates = maxmin_rates(&[vec![0], vec![0, 1], vec![1]], &[1.0, 10.0]);
        assert!((rates[0] - 0.5).abs() < 1e-9);
        assert!((rates[1] - 0.5).abs() < 1e-9);
        assert!((rates[2] - 9.5).abs() < 1e-9);
    }

    #[test]
    fn no_flows() {
        assert!(maxmin_rates(&[], &[1.0]).is_empty());
    }

    #[test]
    fn link_capacities_respected() {
        // 5 flows over 3 links in various combinations.
        let paths = vec![vec![0, 1], vec![1, 2], vec![0], vec![2], vec![0, 2]];
        let caps = vec![3.0, 2.0, 4.0];
        let rates = maxmin_rates(&paths, &caps);
        let mut used = [0.0; 3];
        for (f, p) in paths.iter().enumerate() {
            for &l in p {
                used[l] += rates[f];
            }
        }
        for l in 0..3 {
            assert!(used[l] <= caps[l] + 1e-9, "link {l} over capacity: {}", used[l]);
        }
        // Max-min property: every flow is bottlenecked somewhere (its rate
        // cannot be raised without violating a capacity).
        for (f, p) in paths.iter().enumerate() {
            let bottlenecked = p.iter().any(|&l| used[l] >= caps[l] - 1e-9);
            assert!(bottlenecked, "flow {f} not bottlenecked");
        }
    }
}
