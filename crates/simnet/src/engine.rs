//! Discrete-event execution of a [`CommSchedule`] over a [`FatTree`].
//!
//! Transfers become *fluid flows*: while active, a flow receives a max-min
//! fair share of every link on its path, and rates are recomputed whenever the
//! set of active flows changes. Compute ops occupy their rank's (optionally
//! serialized) compute resource. The engine advances virtual time to the next
//! of (a) earliest flow completion, (b) earliest pending discrete event.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::maxmin::maxmin_rates;
use crate::schedule::{CommSchedule, OpId, OpKind};
use crate::topology::{FatTree, LinkId};
use crate::total::TotalF64;

/// Residual-byte tolerance below which a flow is considered finished.
const EPS_BYTES: f64 = 1e-3;

/// Options controlling simulation semantics.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// If true (default), compute ops on the same rank execute one at a time,
    /// modelling a single reduction core/accelerator per node. The paper's
    /// implementation sums network buffers on the host CPU with altivec.
    pub serialize_compute: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { serialize_compute: true }
    }
}

/// Result of simulating a schedule.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Time each op became ready (all dependencies satisfied).
    pub start: Vec<f64>,
    /// Finish time of each op (seconds of virtual time).
    pub finish: Vec<f64>,
    /// Time at which the last op finished.
    pub makespan: f64,
    /// Bytes carried by each directed link.
    pub link_bytes: Vec<f64>,
    /// Number of rate recomputations performed (diagnostic).
    pub rate_recomputes: usize,
}

impl SimReport {
    /// Utilization of a link over the whole makespan, in `[0, 1]`.
    pub fn link_utilization(&self, topo: &FatTree, l: LinkId) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.link_bytes[l] / (topo.capacity(l) * self.makespan)
    }

    /// The highest per-link utilization (the schedule's bottleneck link).
    pub fn max_link_utilization(&self, topo: &FatTree) -> f64 {
        (0..topo.n_links())
            .map(|l| self.link_utilization(topo, l))
            .fold(0.0, f64::max)
    }

    /// Export a Gantt-style timeline as CSV
    /// (`op,kind,rank,peer,bytes,start,finish`), for plotting schedules.
    pub fn timeline_csv(&self, sched: &CommSchedule) -> String {
        let mut out = String::from("op,kind,rank,peer,bytes,start,finish\n");
        for (id, op) in sched.ops().iter().enumerate() {
            let (kind, rank, peer, bytes) = match op.kind {
                OpKind::Transfer { src, dst, bytes } => ("transfer", src, dst as i64, bytes),
                OpKind::Compute { rank, .. } => ("compute", rank, -1, 0.0),
            };
            out.push_str(&format!(
                "{id},{kind},{rank},{peer},{bytes},{:.9},{:.9}\n",
                self.start[id], self.finish[id]
            ));
        }
        out
    }
}

/// Trace the schedule's critical path through its declared dependencies:
/// starting from the op that finished last, repeatedly step to the
/// dependency that finished latest. Returns op ids in execution order.
/// (Implicit serialization — per-rank compute queues, link contention — is
/// not part of the declared DAG, so this is the *algorithmic* critical path;
/// gaps between an op's deps finishing and the op itself finishing indicate
/// resource contention.)
pub fn critical_path(sched: &CommSchedule, rep: &SimReport) -> Vec<OpId> {
    if sched.is_empty() {
        return Vec::new();
    }
    let mut cur = (0..sched.len())
        .max_by(|&a, &b| rep.finish[a].partial_cmp(&rep.finish[b]).expect("finite"))
        .expect("non-empty");
    let mut path = vec![cur];
    loop {
        let deps = &sched.ops()[cur].deps;
        let Some(&next) = deps.iter().max_by(|&&a, &&b| {
            rep.finish[a].partial_cmp(&rep.finish[b]).expect("finite")
        }) else {
            break;
        };
        path.push(next);
        cur = next;
    }
    path.reverse();
    path
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// All dependencies of the op are satisfied; dispatch it.
    OpReady(OpId),
    /// A transfer's latency elapsed; it joins the fluid system.
    FlowActivate(OpId),
    /// A compute op finished.
    ComputeDone(OpId),
}

struct HeapItem {
    t: TotalF64,
    seq: u64,
    ev: Event,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

struct ActiveFlow {
    op: OpId,
    remaining: f64,
    rate: f64,
    path: Vec<LinkId>,
}

struct Engine<'a> {
    sched: &'a CommSchedule,
    topo: &'a FatTree,
    opts: SimOptions,
    t: f64,
    seq: u64,
    heap: BinaryHeap<Reverse<HeapItem>>,
    flows: Vec<ActiveFlow>,
    rates_dirty: bool,
    indeg: Vec<usize>,
    children: Vec<Vec<OpId>>,
    start: Vec<f64>,
    finish: Vec<f64>,
    done: Vec<bool>,
    n_done: usize,
    rank_free: Vec<f64>,
    link_bytes: Vec<f64>,
    rate_recomputes: usize,
}

impl CommSchedule {
    /// Execute the schedule over `topo` in virtual time.
    ///
    /// # Panics
    /// Panics if the schedule references ranks outside the topology, or if it
    /// cannot make progress (impossible for schedules built through the
    /// public API, which enforces the DAG property).
    pub fn simulate(&self, topo: &FatTree, opts: &SimOptions) -> SimReport {
        assert!(
            self.n_ranks() <= topo.nodes(),
            "schedule uses {} ranks but topology has {} nodes",
            self.n_ranks(),
            topo.nodes()
        );
        let n = self.len();
        let mut children: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (id, op) in self.ops().iter().enumerate() {
            indeg[id] = op.deps.len();
            for &d in &op.deps {
                children[d].push(id);
            }
        }
        let mut eng = Engine {
            sched: self,
            topo,
            opts: opts.clone(),
            t: 0.0,
            seq: 0,
            heap: BinaryHeap::new(),
            flows: Vec::new(),
            rates_dirty: false,
            indeg,
            children,
            start: vec![0.0; n],
            finish: vec![0.0; n],
            done: vec![false; n],
            n_done: 0,
            rank_free: vec![0.0; topo.nodes()],
            link_bytes: vec![0.0; topo.n_links()],
            rate_recomputes: 0,
        };
        for id in 0..n {
            if eng.indeg[id] == 0 {
                eng.push_event(0.0, Event::OpReady(id));
            }
        }
        eng.run();
        assert_eq!(eng.n_done, n, "simulation stalled: {}/{} ops completed", eng.n_done, n);
        let makespan = eng.finish.iter().copied().fold(0.0, f64::max);
        SimReport {
            start: eng.start,
            finish: eng.finish,
            makespan,
            link_bytes: eng.link_bytes,
            rate_recomputes: eng.rate_recomputes,
        }
    }
}

impl Engine<'_> {
    fn push_event(&mut self, t: f64, ev: Event) {
        self.seq += 1;
        self.heap.push(Reverse(HeapItem { t: TotalF64::new(t), seq: self.seq, ev }));
    }

    fn run(&mut self) {
        loop {
            if self.rates_dirty {
                self.recompute_rates();
            }
            let t_flow = self.next_flow_completion();
            let t_heap = self.heap.peek().map(|Reverse(h)| h.t.get());
            let t_next = match (t_flow, t_heap) {
                (None, None) => return,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            self.advance_to(t_next);
            self.complete_finished_flows();
            self.drain_events_at_now();
        }
    }

    fn recompute_rates(&mut self) {
        let paths: Vec<Vec<LinkId>> = self.flows.iter().map(|f| f.path.clone()).collect();
        let rates = maxmin_rates(&paths, self.topo.capacities());
        for (f, r) in self.flows.iter_mut().zip(rates) {
            f.rate = r;
        }
        self.rates_dirty = false;
        self.rate_recomputes += 1;
    }

    fn next_flow_completion(&self) -> Option<f64> {
        self.flows
            .iter()
            .map(|f| {
                if f.rate.is_infinite() || f.remaining <= EPS_BYTES {
                    self.t
                } else {
                    self.t + f.remaining / f.rate
                }
            })
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
    }

    fn advance_to(&mut self, t_next: f64) {
        let dt = t_next - self.t;
        debug_assert!(dt >= -1e-12, "time went backwards: {} -> {}", self.t, t_next);
        if dt > 0.0 {
            for f in &mut self.flows {
                if f.rate.is_finite() {
                    let moved = (f.rate * dt).min(f.remaining);
                    f.remaining -= moved;
                    for &l in &f.path {
                        self.link_bytes[l] += moved;
                    }
                } else {
                    f.remaining = 0.0;
                }
            }
        }
        self.t = t_next;
    }

    fn complete_finished_flows(&mut self) {
        let mut i = 0;
        let mut completed = Vec::new();
        while i < self.flows.len() {
            if self.flows[i].remaining <= EPS_BYTES || self.flows[i].rate.is_infinite() {
                let f = self.flows.swap_remove(i);
                completed.push(f.op);
                self.rates_dirty = true;
            } else {
                i += 1;
            }
        }
        for op in completed {
            self.finish_op(op);
        }
    }

    fn drain_events_at_now(&mut self) {
        // Process every event with timestamp <= now. Newly produced events at
        // the same timestamp are handled in the same pass.
        while let Some(Reverse(h)) = self.heap.peek() {
            if h.t.get() > self.t + 1e-15 {
                break;
            }
            let Reverse(item) = self.heap.pop().expect("peeked");
            match item.ev {
                Event::OpReady(id) => {
                    self.start[id] = self.t;
                    self.dispatch(id)
                }
                Event::FlowActivate(id) => self.activate_flow(id),
                Event::ComputeDone(id) => self.finish_op(id),
            }
        }
    }

    fn dispatch(&mut self, id: OpId) {
        match self.sched.ops()[id].kind {
            OpKind::Transfer { src, dst, bytes } => {
                let _ = bytes;
                if src == dst {
                    // Local handoff: no fabric involvement.
                    self.finish_op(id);
                } else {
                    // Zero-byte messages still pay the wire latency; the
                    // activation step completes them immediately.
                    let lat = self.topo.path_latency(src, dst);
                    self.push_event(self.t + lat, Event::FlowActivate(id));
                }
            }
            OpKind::Compute { rank, secs } => {
                let start = if self.opts.serialize_compute {
                    self.t.max(self.rank_free[rank])
                } else {
                    self.t
                };
                let end = start + secs;
                if self.opts.serialize_compute {
                    self.rank_free[rank] = end;
                }
                self.push_event(end, Event::ComputeDone(id));
            }
        }
    }

    fn activate_flow(&mut self, id: OpId) {
        let OpKind::Transfer { src, dst, bytes } = self.sched.ops()[id].kind else {
            unreachable!("FlowActivate on a compute op");
        };
        if bytes <= 0.0 {
            self.finish_op(id);
            return;
        }
        let path = self.topo.route(src, dst, id as u64);
        self.flows.push(ActiveFlow { op: id, remaining: bytes, rate: 0.0, path });
        self.rates_dirty = true;
    }

    fn finish_op(&mut self, id: OpId) {
        debug_assert!(!self.done[id], "op {id} finished twice");
        self.done[id] = true;
        self.n_done += 1;
        self.finish[id] = self.t;
        // Children are notified at the current instant.
        let kids = std::mem::take(&mut self.children[id]);
        for k in kids {
            self.indeg[k] -= 1;
            if self.indeg[k] == 0 {
                self.push_event(self.t, Event::OpReady(k));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTreeConfig;

    fn tiny_net(nodes: usize, bw: f64) -> FatTree {
        FatTree::new(FatTreeConfig {
            nodes,
            leaf_radix: 4,
            spines: 2,
            nics_per_node: 1,
            nic_bandwidth: bw,
            latency: 1e-6,
            oversubscription: 1.0,
        })
    }

    #[test]
    fn single_transfer_time_is_latency_plus_serialization() {
        let topo = tiny_net(2, 1e9);
        let mut s = CommSchedule::new(2);
        s.transfer(0, 1, 1e9, vec![]);
        let rep = s.simulate(&topo, &SimOptions::default());
        // 1 GB over 1 GB/s = 1 s, plus 1 µs latency.
        assert!((rep.makespan - 1.000001).abs() < 1e-4, "makespan {}", rep.makespan);
    }

    #[test]
    fn two_flows_same_nic_halve_throughput() {
        let topo = tiny_net(3, 1e9);
        let mut s = CommSchedule::new(3);
        // Both transfers leave node 0 through its single NIC.
        s.transfer(0, 1, 1e9, vec![]);
        s.transfer(0, 2, 1e9, vec![]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert!((rep.makespan - 2.0).abs() < 1e-3, "makespan {}", rep.makespan);
    }

    #[test]
    fn disjoint_flows_run_concurrently() {
        let topo = tiny_net(4, 1e9);
        let mut s = CommSchedule::new(4);
        s.transfer(0, 1, 1e9, vec![]);
        s.transfer(2, 3, 1e9, vec![]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert!(rep.makespan < 1.1, "disjoint flows should overlap: {}", rep.makespan);
    }

    #[test]
    fn dependencies_serialize() {
        let topo = tiny_net(2, 1e9);
        let mut s = CommSchedule::new(2);
        let a = s.transfer(0, 1, 1e9, vec![]);
        s.transfer(1, 0, 1e9, vec![a]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert!((rep.makespan - 2.0).abs() < 1e-3, "makespan {}", rep.makespan);
    }

    #[test]
    fn compute_serialization_per_rank() {
        let topo = tiny_net(2, 1e9);
        let mut s = CommSchedule::new(2);
        s.compute(0, 0.5, vec![]);
        s.compute(0, 0.5, vec![]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert!((rep.makespan - 1.0).abs() < 1e-9);
        let rep2 = s.simulate(&topo, &SimOptions { serialize_compute: false });
        assert!((rep2.makespan - 0.5).abs() < 1e-9);
    }

    #[test]
    fn self_transfer_is_free() {
        let topo = tiny_net(2, 1e9);
        let mut s = CommSchedule::new(2);
        s.transfer(1, 1, 1e12, vec![]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert_eq!(rep.makespan, 0.0);
    }

    #[test]
    fn zero_byte_transfer_costs_latency_only() {
        let topo = tiny_net(2, 1e9);
        let mut s = CommSchedule::new(2);
        s.transfer(0, 1, 0.0, vec![]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert!((rep.makespan - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn link_bytes_accounted() {
        let topo = tiny_net(2, 1e9);
        let mut s = CommSchedule::new(2);
        s.transfer(0, 1, 1e6, vec![]);
        let rep = s.simulate(&topo, &SimOptions::default());
        let total: f64 = rep.link_bytes.iter().sum();
        // Intra-leaf path traverses 2 links.
        assert!((total - 2e6).abs() < 1.0, "total {total}");
    }

    #[test]
    fn diamond_dag_ordering() {
        let topo = tiny_net(4, 1e9);
        let mut s = CommSchedule::new(4);
        let a = s.transfer(0, 1, 1e6, vec![]);
        let b = s.transfer(0, 2, 1e6, vec![]);
        let c = s.compute(3, 0.001, vec![a, b]);
        let d = s.transfer(3, 0, 1e6, vec![c]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert!(rep.finish[c] >= rep.finish[a].max(rep.finish[b]));
        assert!(rep.finish[d] > rep.finish[c]);
        assert_eq!(rep.makespan, rep.finish[d]);
    }

    #[test]
    fn critical_path_follows_longest_chain() {
        let topo = tiny_net(4, 1e9);
        let mut s = CommSchedule::new(4);
        // Short branch: one transfer. Long branch: three chained transfers.
        let short = s.transfer(0, 1, 1e6, vec![]);
        let a = s.transfer(0, 2, 1e6, vec![]);
        let b = s.transfer(2, 3, 1e6, vec![a]);
        let c = s.transfer(3, 1, 1e6, vec![b]);
        let sink = s.compute(1, 0.001, vec![short, c]);
        let rep = s.simulate(&topo, &SimOptions::default());
        let path = critical_path(&s, &rep);
        assert_eq!(path, vec![a, b, c, sink]);
    }

    #[test]
    fn start_times_respect_dependencies() {
        let topo = tiny_net(3, 1e9);
        let mut s = CommSchedule::new(3);
        let a = s.transfer(0, 1, 1e8, vec![]);
        let b = s.transfer(1, 2, 1e8, vec![a]);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert_eq!(rep.start[a], 0.0);
        assert!((rep.start[b] - rep.finish[a]).abs() < 1e-12);
        assert!(rep.finish[b] > rep.start[b]);
    }

    #[test]
    fn timeline_csv_lines() {
        let topo = tiny_net(2, 1e9);
        let mut s = CommSchedule::new(2);
        let a = s.transfer(0, 1, 1e6, vec![]);
        s.compute(1, 0.01, vec![a]);
        let rep = s.simulate(&topo, &SimOptions::default());
        let csv = rep.timeline_csv(&s);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0,transfer,0,1,1000000,"));
        assert!(lines[2].starts_with("1,compute,1,-1,0,"));
    }

    #[test]
    fn critical_path_of_empty_schedule() {
        let s = CommSchedule::new(1);
        let topo = tiny_net(1, 1e9);
        let rep = s.simulate(&topo, &SimOptions::default());
        assert!(critical_path(&s, &rep).is_empty());
    }

    #[test]
    fn pipelining_beats_single_message() {
        // Sending 8 chunks through a 2-hop relay pipelined should beat
        // store-and-forward of the whole message.
        let topo = tiny_net(3, 1e9);
        let bytes = 8e8;
        // Store-and-forward whole message.
        let mut s1 = CommSchedule::new(3);
        let a = s1.transfer(0, 1, bytes, vec![]);
        s1.transfer(1, 2, bytes, vec![a]);
        let r1 = s1.simulate(&topo, &SimOptions::default());
        // Pipelined in 8 chunks.
        let mut s2 = CommSchedule::new(3);
        let chunk = bytes / 8.0;
        let mut prev_in: Option<usize> = None;
        for _ in 0..8 {
            let dep = prev_in.map(|p| vec![p]).unwrap_or_default();
            let t_in = s2.transfer(0, 1, chunk, dep);
            s2.transfer(1, 2, chunk, vec![t_in]);
            prev_in = Some(t_in);
        }
        let r2 = s2.simulate(&topo, &SimOptions::default());
        assert!(
            r2.makespan < r1.makespan * 0.7,
            "pipelined {} vs whole {}",
            r2.makespan,
            r1.makespan
        );
    }
}
