//! Smoke tests for the report renderers (cheap experiments only — the
//! accuracy figures are exercised by `dcnn-core`'s own tests).

use dcnn_bench::{render_comm, render_fig7, render_fig9, render_table2, to_json};
use dcnn_core::experiments::AccuracyScale;

#[test]
fn fig7_renders_three_rows() {
    let s = render_fig7();
    assert!(s.contains("Figure 7"));
    // Header + separator + 3 node counts.
    assert_eq!(s.lines().filter(|l| l.starts_with('|')).count(), 5);
    assert!(s.contains("4.2"));
}

#[test]
fn fig9_renders_four_group_rows() {
    let s = render_fig9();
    assert_eq!(s.lines().filter(|l| l.starts_with("| 32")).count(), 4);
}

#[test]
fn table2_has_paper_rows() {
    let s = render_table2();
    assert!(s.contains("Priya et al"));
    assert!(s.contains("You et al"));
    assert!(s.contains("Our work"));
    assert!(s.contains("48 min"));
}

#[test]
fn json_rows_parse() {
    let j = to_json("fig8", &AccuracyScale::quick());
    let v: serde_json::Value = serde_json::from_str(&j).expect("valid json");
    assert_eq!(v.as_array().expect("array").len(), 3);
    assert!(v[0]["shuffle_secs"].as_f64().expect("number") > 0.0);
}

#[test]
fn comm_counters_come_from_a_real_run() {
    let s = render_comm();
    // Header + separator + 8 rank rows.
    assert_eq!(s.lines().filter(|l| l.starts_with('|')).count(), 10);
    let j = to_json("comm", &AccuracyScale::quick());
    let v: serde_json::Value = serde_json::from_str(&j).expect("valid json");
    let rows = v.as_array().expect("array");
    assert_eq!(rows.len(), 8);
    for r in rows {
        assert!(r["bytes_sent"].as_u64().expect("bytes") > 0);
        assert!(r["allreduce_ms"].as_f64().expect("phase") > 0.0);
    }
}

#[test]
#[should_panic]
fn unknown_experiment_panics() {
    let _ = to_json("fig99", &AccuracyScale::quick());
}
