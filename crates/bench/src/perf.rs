//! The standing performance baseline: min-of-N microbenchmarks of the
//! hot paths — the reduce kernels under every allreduce, the frame
//! encoder under every TCP send, and the data-plane record codec under
//! every served batch — emitted as one `BENCH_<date>.json` trajectory row
//! per kernel × size.
//!
//! Timing discipline: each row reports the *minimum* wall time per
//! iteration over several repetitions. The minimum, not the mean, is the
//! statistic of record — scheduler preemption and cache pollution only ever
//! add time, so the min is the closest observable to the kernel's true
//! cost and is by far the most stable across runs. Deterministic
//! CPU-bound rows are `tracked` (CI gates on them); loopback socket
//! round-trips are recorded for the trajectory but untracked, because
//! wall-clock RTT through the kernel's TCP stack is too noisy to gate on.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use dcnn_core::collectives::reduce::{self, reference};
use dcnn_core::collectives::transport::wire;
use dcnn_core::collectives::transport::Payload;
use serde::Serialize;

/// Schema tag stamped into every report.
pub const SCHEMA: &str = "dcnn-bench-v1";

/// One measured kernel × size.
#[derive(Debug, Clone, Serialize)]
pub struct PerfRow {
    /// Stable row identifier, `family/kernel/size`.
    pub name: String,
    /// Payload bytes processed per iteration.
    pub bytes: u64,
    /// Minimum observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput implied by the minimum, GiB/s.
    pub gib_per_s: f64,
    /// Whether CI gates on this row (deterministic kernels yes, socket
    /// round-trips no).
    pub tracked: bool,
}

/// A full benchmark report — what `BENCH_<date>.json` holds.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Civil date the report was taken (UTC), `YYYY-MM-DD`.
    pub date: String,
    /// Quick mode trades repetitions for runtime (the CI smoke).
    pub quick: bool,
    /// The measurements.
    pub rows: Vec<PerfRow>,
}

/// Today's civil date (UTC) as `YYYY-MM-DD`, from `SystemTime` alone —
/// Howard Hinnant's days-from-civil algorithm inverted, no date crate.
pub fn civil_date_utc() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).expect("clock before 1970").as_secs();
    let days = (secs / 86_400) as i64;
    // civil_from_days(z) with the 1970-03-01 era shift.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Minimum ns per iteration of `f` over `reps` repetitions of `iters`
/// calls each.
fn min_ns_per_iter(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn row(name: String, bytes: u64, ns: f64, tracked: bool) -> PerfRow {
    let gib_per_s = if ns > 0.0 { bytes as f64 / ns * 1e9 / (1u64 << 30) as f64 } else { 0.0 };
    PerfRow { name, bytes, ns_per_iter: ns, gib_per_s, tracked }
}

/// Iteration count targeting roughly constant work per repetition across
/// sizes, floored so tiny kernels still amortize timer overhead.
fn iters_for(bytes: u64, quick: bool) -> usize {
    let budget: u64 = if quick { 1 << 22 } else { 1 << 26 };
    (budget / bytes.max(1)).clamp(8, 1 << 16) as usize
}

fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as i32 as f32) * 1e-4
        })
        .collect()
}

/// Element counts spanning the Figure 5 message-size crossover: below,
/// around and above the default split threshold (2^18 elements = 1 MiB).
pub fn reduce_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 10, 1 << 17]
    } else {
        vec![1 << 10, 1 << 14, 1 << 17, 1 << 20]
    }
}

/// Benchmark the reduce kernels — vectorized public entry points and the
/// scalar references — at each size.
pub fn bench_reduce(quick: bool, rows: &mut Vec<PerfRow>) {
    let reps = if quick { 5 } else { 9 };
    for n in reduce_sizes(quick) {
        let bytes = (n * 4) as u64;
        let iters = iters_for(bytes, quick);
        let src = fill(n, 3);
        let base = fill(n, 5);

        let mut dst = base.clone();
        let ns = min_ns_per_iter(reps, iters, || {
            reduce::sum_into(std::hint::black_box(&mut dst), std::hint::black_box(&src));
        });
        rows.push(row(format!("reduce/sum_into/{n}"), bytes, ns, true));

        let mut dst = base.clone();
        let ns = min_ns_per_iter(reps, iters, || {
            reference::sum_into(std::hint::black_box(&mut dst), std::hint::black_box(&src));
        });
        rows.push(row(format!("reduce/sum_into_ref/{n}"), bytes, ns, false));

        let mut out = vec![0.0f32; n];
        let ns = min_ns_per_iter(reps, iters, || {
            reduce::sum_to(
                std::hint::black_box(&mut out),
                std::hint::black_box(&base),
                std::hint::black_box(&src),
            );
        });
        rows.push(row(format!("reduce/sum_to/{n}"), bytes, ns, true));

        let mut dst = base.clone();
        let ns = min_ns_per_iter(reps, iters, || {
            reduce::scale(std::hint::black_box(&mut dst), std::hint::black_box(1.000_001));
        });
        rows.push(row(format!("reduce/scale/{n}"), bytes, ns, true));
    }
}

/// Benchmark frame encoding: the bulk little-endian vectored path against
/// the staged per-element reference encoder, on an f32 payload.
pub fn bench_frame_encode(quick: bool, rows: &mut Vec<PerfRow>) {
    let reps = if quick { 5 } else { 9 };
    let sizes: &[usize] = if quick { &[1 << 14] } else { &[1 << 10, 1 << 14, 1 << 18] };
    for &n in sizes {
        let payload = Payload::f32(fill(n, 11));
        let bytes = (n * 4) as u64;
        let iters = iters_for(bytes, quick);

        let mut sink = Vec::with_capacity(n * 4 + 64);
        let ns = min_ns_per_iter(reps, iters, || {
            sink.clear();
            let body = wire::payload_wire_bytes(std::hint::black_box(&payload));
            let parts = wire::frame_parts(0, 0, 0, wire::payload_kind(&payload), &body);
            wire::write_all_vectored(&mut sink, &[&parts.head, &body, &parts.crc])
                .expect("vec write");
            std::hint::black_box(sink.len());
        });
        rows.push(row(format!("frame/encode_vectored/{n}"), bytes, ns, true));

        let ns = min_ns_per_iter(reps, iters, || {
            let frame = wire::encode_frame(0, 0, 0, std::hint::black_box(&payload));
            std::hint::black_box(frame.len());
        });
        rows.push(row(format!("frame/encode_staged/{n}"), bytes, ns, false));
    }
}

/// Benchmark the data-plane hot paths: record pack/unpack (every batch a
/// blob server ships travels through them) and the client-side
/// decode+augment of a whole mini-batch. All three are deterministic and
/// CPU-bound, so they gate.
pub fn bench_data_plane(quick: bool, rows: &mut Vec<PerfRow>) {
    use dcnn_core::dimd::shuffle::{pack, unpack};
    use dcnn_core::dimd::{decode_augmented_batch, Dimd, SynthConfig, SynthImageNet};

    let reps = if quick { 5 } else { 9 };
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 24;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut dimd = Dimd::load_partition(&ds, 0, 1, 70, 42);

    for n in [8usize, 32] {
        let (salt, records) = dimd.sample_batch_records(n);
        let packed = pack(&records);
        let bytes = packed.len() as u64;
        let iters = iters_for(bytes, quick).min(1 << 12);

        let ns = min_ns_per_iter(reps, iters, || {
            let body = pack(std::hint::black_box(&records));
            std::hint::black_box(body.len());
        });
        rows.push(row(format!("data/pack_batch/{n}"), bytes, ns, true));

        let ns = min_ns_per_iter(reps, iters, || {
            let mut out = Vec::with_capacity(n);
            unpack(std::hint::black_box(&packed), &mut out).expect("well-formed payload");
            std::hint::black_box(out.len());
        });
        rows.push(row(format!("data/unpack_batch/{n}"), bytes, ns, true));

        // Decode dominates the client pipeline; crop 16 matches the
        // data-plane workloads. Uncompressed tensor bytes are the work done.
        let decode_bytes = (n * 3 * 16 * 16 * 4) as u64;
        let decode_iters = if quick { 16 } else { 64 };
        let ns = min_ns_per_iter(reps, decode_iters, || {
            let (x, labels) =
                decode_augmented_batch(std::hint::black_box(&records), 16, std::hint::black_box(salt));
            std::hint::black_box((x.data().len(), labels.len()));
        });
        rows.push(row(format!("data/decode_batch/{n}"), decode_bytes, ns, true));
    }
}

/// Benchmark the sharded-optimizer collectives: a blocking ring
/// reduce-scatter and the matching counts-based allgather between two
/// threaded ranks — the per-step exchange pair the `DCNN_SHARD_OPTIM`
/// gradient path lives on. The threaded fabric is in-process channel
/// passing (no kernel sockets), so the min-of-N statistic is stable
/// enough to gate; each row reports the cluster-max of the per-rank
/// minima, since a collective is only as fast as its slowest rank.
pub fn bench_shard_collectives(quick: bool, rows: &mut Vec<PerfRow>) {
    use dcnn_core::collectives::{run_cluster, Comm};

    let reps = if quick { 3 } else { 7 };
    let sizes: &[usize] = if quick { &[1 << 14] } else { &[1 << 10, 1 << 14, 1 << 18] };
    for &n in sizes {
        let bytes = (n * 4) as u64;
        let iters = iters_for(bytes, quick).clamp(8, 1 << 9);
        let counts = vec![n / 2, n - n / 2];

        let c = counts.clone();
        let mins = run_cluster(2, move |comm: &Comm| {
            let src = fill(n, 7 + comm.rank() as u64);
            let mut buf = src.clone();
            min_ns_per_iter(reps, iters, || {
                buf.copy_from_slice(&src);
                comm.reduce_scatter(std::hint::black_box(&mut buf), &c);
            })
        });
        let ns = mins.into_iter().fold(0.0f64, f64::max);
        rows.push(row(format!("shard/reduce_scatter/{n}"), bytes, ns, true));

        let c = counts.clone();
        let mins = run_cluster(2, move |comm: &Comm| {
            let mut buf = fill(n, 9 + comm.rank() as u64);
            min_ns_per_iter(reps, iters, || {
                comm.allgather_f32(std::hint::black_box(&mut buf), &c);
            })
        });
        let ns = mins.into_iter().fold(0.0f64, f64::max);
        rows.push(row(format!("shard/allgather/{n}"), bytes, ns, true));
    }
}

/// Benchmark the collective-tuner decision path: freezing the decision
/// table from a cluster-agreed score table, and the per-bucket `select`
/// that runs on every bucket launch once the table is frozen. Both are
/// deterministic CPU-bound bookkeeping — the select in particular sits on
/// the gradient hot path, so it must stay down in the noise next to the
/// reduce it schedules.
pub fn bench_tuner(quick: bool, rows: &mut Vec<PerfRow>) {
    use dcnn_core::collectives::{AllreduceAlgo, Tuner, TunerConfig};

    let reps = if quick { 5 } else { 9 };
    let cfg = TunerConfig::with_candidates(vec![
        AllreduceAlgo::PipelinedRing,
        AllreduceAlgo::HalvingDoubling,
        AllreduceAlgo::RecursiveDoubling,
    ]);

    // A synthetic agreed table: 64 size classes x 3 candidates of 16-byte
    // wire entries, scores arranged so every class has a distinct argmin.
    let table: Vec<(u32, u32, f64)> = (0..64u32)
        .flat_map(|class| {
            (0..3u32).map(move |cand| (class, cand, ((class * 7 + cand * 13) % 29) as f64 + 1.0))
        })
        .collect();

    let mut tuner = Tuner::new(cfg);
    let bytes = (table.len() * 16) as u64;
    let iters = if quick { 1 << 9 } else { 1 << 11 };
    let ns = min_ns_per_iter(reps, iters, || {
        tuner.apply_agreed(std::hint::black_box(&table));
    });
    rows.push(row(format!("tune/apply_agreed/{}", table.len()), bytes, ns, true));

    // Converged select: one decision per bucket launch, cycled over 16
    // bucket sizes spanning the agreed classes.
    let sizes: Vec<u64> = (6..22).map(|c| 1u64 << c).collect();
    let iters = if quick { 1 << 11 } else { 1 << 13 };
    let ns = min_ns_per_iter(reps, iters, || {
        for (slot, &b) in sizes.iter().enumerate() {
            let sel = tuner.select(slot, std::hint::black_box(b), 4, false);
            std::hint::black_box(sel.candidate);
        }
    }) / sizes.len() as f64;
    rows.push(row(format!("tune/select_converged/{}", sizes.len()), 0, ns, true));
}

/// Loopback socket round-trip of one framed f32 payload (untracked: real
/// kernel TCP, so wall-clock noise is expected).
pub fn bench_socket_rtt(quick: bool, rows: &mut Vec<PerfRow>) {
    let n = 1 << 14;
    let payload = Payload::f32(fill(n, 13));
    let bytes = (n * 4) as u64;
    let frame = wire::encode_frame(0, 0, 0, &payload);
    let frame_len = frame.len();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let echo = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        s.set_nodelay(true).ok();
        let mut buf = vec![0u8; frame_len];
        while s.read_exact(&mut buf).is_ok() {
            if s.write_all(&buf).is_err() {
                break;
            }
        }
    });
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).ok();
    let mut back = vec![0u8; frame_len];
    let reps = if quick { 3 } else { 5 };
    let iters = if quick { 20 } else { 100 };
    let ns = min_ns_per_iter(reps, iters, || {
        s.write_all(&frame).expect("send");
        s.read_exact(&mut back).expect("echo");
    });
    drop(s);
    echo.join().expect("echo thread");
    rows.push(row(format!("socket/rtt_loopback/{n}"), bytes, ns, false));
}

/// Run the full suite and assemble the report.
pub fn run_suite(quick: bool) -> BenchReport {
    let mut rows = Vec::new();
    bench_reduce(quick, &mut rows);
    bench_frame_encode(quick, &mut rows);
    bench_data_plane(quick, &mut rows);
    bench_shard_collectives(quick, &mut rows);
    bench_tuner(quick, &mut rows);
    bench_socket_rtt(quick, &mut rows);
    BenchReport { schema: SCHEMA.to_string(), date: civil_date_utc(), quick, rows }
}

/// One tracked-row regression against a baseline report.
#[derive(Debug)]
pub struct Regression {
    /// Row name.
    pub name: String,
    /// Baseline ns/iter.
    pub baseline_ns: f64,
    /// Current ns/iter.
    pub current_ns: f64,
    /// `current / baseline - 1`.
    pub slowdown: f64,
}

/// The `schema` field of a parsed baseline document, if present. Callers
/// must check this against [`SCHEMA`] before gating on [`regressions`]:
/// a baseline written by a different report format would otherwise gate
/// on garbage (missing rows read as "no regression") or panic downstream.
/// `None` means the document carries no schema at all — equally untrusted.
pub fn baseline_schema(baseline: &serde_json::Value) -> Option<&str> {
    baseline.get("schema").and_then(|s| s.as_str())
}

/// Compare `current` against a parsed baseline JSON document: every
/// tracked row present in both reports must not be slower than
/// `max_regress` (fractional, e.g. `0.20`). Rows only in one report are
/// ignored — adding a benchmark must not fail CI retroactively.
pub fn regressions(
    current: &BenchReport,
    baseline: &serde_json::Value,
    max_regress: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let Some(rows) = baseline.get("rows").and_then(|r| r.as_array()) else {
        return out;
    };
    for cur in current.rows.iter().filter(|r| r.tracked) {
        let base = rows
            .iter()
            .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(cur.name.as_str()));
        let Some(base_ns) = base.and_then(|b| b.get("ns_per_iter")).and_then(|v| v.as_f64()) else {
            continue;
        };
        if base_ns <= 0.0 {
            continue;
        }
        let slowdown = cur.ns_per_iter / base_ns - 1.0;
        if slowdown > max_regress {
            out.push(Regression {
                name: cur.name.clone(),
                baseline_ns: base_ns,
                current_ns: cur.ns_per_iter,
                slowdown,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_is_iso_shaped() {
        let d = civil_date_utc();
        assert_eq!(d.len(), 10, "{d}");
        let b = d.as_bytes();
        assert_eq!((b[4], b[7]), (b'-', b'-'), "{d}");
        let year: i32 = d[..4].parse().expect("year");
        assert!((2020..2200).contains(&year), "{d}");
        let month: u32 = d[5..7].parse().expect("month");
        let day: u32 = d[8..10].parse().expect("day");
        assert!((1..=12).contains(&month) && (1..=31).contains(&day), "{d}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            schema: SCHEMA.to_string(),
            date: "2026-08-07".to_string(),
            quick: true,
            rows: vec![row("reduce/sum_into/1024".into(), 4096, 100.0, true)],
        };
        let json = serde_json::to_string(&report).expect("serialize");
        let v: serde_json::Value = serde_json::from_str(&json).expect("parse");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        let rows = v.get("rows").and_then(|r| r.as_array()).expect("rows");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("bytes").and_then(|b| b.as_u64()), Some(4096));
    }

    #[test]
    fn regression_gate_fires_only_past_the_threshold() {
        let mk = |ns: f64| BenchReport {
            schema: SCHEMA.to_string(),
            date: "2026-08-07".to_string(),
            quick: true,
            rows: vec![row("reduce/sum_into/1024".into(), 4096, ns, true)],
        };
        let baseline_json = serde_json::to_string(&mk(100.0)).expect("serialize");
        let baseline: serde_json::Value = serde_json::from_str(&baseline_json).expect("parse");

        assert!(regressions(&mk(110.0), &baseline, 0.20).is_empty(), "10% is inside budget");
        let hits = regressions(&mk(130.0), &baseline, 0.20);
        assert_eq!(hits.len(), 1, "30% must trip the 20% gate");
        assert!((hits[0].slowdown - 0.30).abs() < 1e-9);
        // Untracked rows never gate: same slowdown, tracked = false.
        let mut fast = mk(130.0);
        fast.rows[0].tracked = false;
        assert!(regressions(&fast, &baseline, 0.20).is_empty());
    }

    #[test]
    fn baseline_schema_distinguishes_matching_foreign_and_missing() {
        let ours: serde_json::Value =
            serde_json::from_str(&format!(r#"{{"schema":"{SCHEMA}","rows":[]}}"#)).expect("parse");
        assert_eq!(baseline_schema(&ours), Some(SCHEMA));

        // A foreign report format (say an eval row file that landed in the
        // bench dir) must be detectable before anyone gates on it.
        let foreign: serde_json::Value =
            serde_json::from_str(r#"{"schema":"dcnn-eval-v1","rows":[]}"#).expect("parse");
        assert_eq!(baseline_schema(&foreign), Some("dcnn-eval-v1"));
        assert_ne!(baseline_schema(&foreign), Some(SCHEMA));

        // No schema field, or a non-string one, reads as None — untrusted.
        let missing: serde_json::Value = serde_json::from_str(r#"{"rows":[]}"#).expect("parse");
        assert_eq!(baseline_schema(&missing), None);
        let wrong_type: serde_json::Value =
            serde_json::from_str(r#"{"schema":3,"rows":[]}"#).expect("parse");
        assert_eq!(baseline_schema(&wrong_type), None);
    }
}
