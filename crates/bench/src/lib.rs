#![warn(missing_docs)]

//! Shared rendering between the `repro` binary and the `figures` bench
//! harness: turns each experiment's typed rows into the markdown tables the
//! paper's figures/tables correspond to, with the paper's reported values
//! alongside where the text states them.

pub mod eval;
pub mod perf;

use dcnn_core::collectives::{AlgoPolicy, AllreduceAlgo};
use dcnn_core::constants::PaperConstants as P;
use dcnn_core::experiments::{self, AccuracyScale};
use dcnn_core::report::{fmt_secs, markdown_table};

/// Render Figure 5.
pub fn render_fig5(extended: bool) -> String {
    let rows = experiments::fig5(16, extended);
    let table = markdown_table(
        &["algorithm", "message MB", "time", "algorithm bandwidth Gbit/s"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.algo.clone(),
                    format!("{:.0}", r.mb),
                    fmt_secs(r.secs),
                    format!("{:.1}", r.gbps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!(
        "## Figure 5 — MPI Allreduce throughput (16 nodes)\n\n\
         Paper: multi-color outperforms both the ring and default OpenMPI at large sizes.\n\n{table}"
    )
}

/// Render Figure 6.
pub fn render_fig6() -> String {
    let rows = experiments::fig6();
    let table = markdown_table(
        &["nodes", "algorithm", "epoch time"],
        &rows
            .iter()
            .map(|r| vec![r.nodes.to_string(), r.algo.clone(), fmt_secs(r.epoch_secs)])
            .collect::<Vec<_>>(),
    );
    format!(
        "## Figure 6 — GoogLeNet-BN epoch time per allreduce algorithm (93 MB payload)\n\n\
         Paper: multi-color gives the best times and ~90.5% scaling efficiency.\n\n{table}"
    )
}

fn render_shuffle(title: &str, paper_note: &str, rows: &[experiments::ShuffleRow]) -> String {
    let table = markdown_table(
        &["nodes", "groups", "shuffle time", "memory/node GB"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    r.groups.to_string(),
                    fmt_secs(r.shuffle_secs),
                    format!("{:.1}", r.memory_gb),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("## {title}\n\n{paper_note}\n\n{table}")
}

/// Render Figure 7.
pub fn render_fig7() -> String {
    render_shuffle(
        "Figure 7 — ImageNet-22k shuffle time and memory per node",
        &format!(
            "Paper: shuffle time falls with node count; at 32 learners the full 22k shuffle takes {} s.",
            P::SHUFFLE_22K_32NODES_SECS
        ),
        &experiments::fig7(),
    )
}

/// Render Figure 8.
pub fn render_fig8() -> String {
    render_shuffle(
        "Figure 8 — ImageNet-1k shuffle time and memory per node",
        "Paper: same shape as Figure 7 at ~1/3 the data volume.",
        &experiments::fig8(),
    )
}

/// Render Figure 9.
pub fn render_fig9() -> String {
    render_shuffle(
        "Figure 9 — group-based ImageNet-22k shuffle on 32 nodes",
        "Paper: \"not much improvement with the group based shuffle\" on a symmetric fabric.",
        &experiments::fig9(),
    )
}

fn render_ablation(title: &str, paper_note: &str, rows: &[experiments::AblationRow]) -> String {
    let table = markdown_table(
        &["model", "nodes", "without", "with", "gain %"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.nodes.to_string(),
                    fmt_secs(r.without_secs),
                    fmt_secs(r.with_secs),
                    format!("{:.0}%", r.gain * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("## {title}\n\n{paper_note}\n\n{table}")
}

/// Render Figure 10.
pub fn render_fig10() -> String {
    render_ablation(
        "Figure 10 — epoch time ± DIMD (ImageNet-1k)",
        "Paper: DIMD improves per-epoch time by ~33% (GoogLeNet-BN) and ~25% (ResNet-50).",
        &experiments::fig10(),
    )
}

/// Render Figure 11.
pub fn render_fig11() -> String {
    render_ablation(
        "Figure 11 — epoch time ± DIMD (ImageNet-22k)",
        "Paper: same experiment on the 7M-image dataset.",
        &experiments::fig11(),
    )
}

/// Render Figure 12.
pub fn render_fig12() -> String {
    render_ablation(
        "Figure 12 — epoch time ± data-parallel-table optimizations",
        "Paper: DPT optimizations improve per-epoch time by 15% (GoogLeNet-BN) / 18% (ResNet-50).",
        &experiments::fig12(),
    )
}

fn render_accuracy(
    title: &str,
    paper_note: &str,
    points: &[dcnn_core::experiments::AccuracyPoint],
) -> String {
    let table = markdown_table(
        &["paper nodes", "epoch", "hours (modelled)", "val top-1", "train error"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.paper_nodes.to_string(),
                    p.epoch.to_string(),
                    format!("{:.3}", p.hours),
                    format!("{:.3}", p.val_acc),
                    format!("{:.3}", p.train_error),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("## {title}\n\n{paper_note}\n\n{table}")
}

/// Render Figures 13 and 15.
pub fn render_fig13_15(scale: &AccuracyScale) -> String {
    render_accuracy(
        "Figures 13 & 15 — ResNet (scaled) accuracy and training error vs time",
        "Paper: all node counts reach the same accuracy; larger clusters get there in fewer hours. \
         Real distributed runs of the scaled model on SynthImageNet; hours mapped through the \
         epoch-time model at the labelled paper scale.",
        &experiments::fig13_15(scale),
    )
}

/// Render Figures 14 and 16.
pub fn render_fig14_16(scale: &AccuracyScale) -> String {
    render_accuracy(
        "Figures 14 & 16 — GoogLeNet-BN (scaled) accuracy and training error vs time",
        "Paper: as Figures 13/15 for the GoogLeNet-BN workload.",
        &experiments::fig14_16(scale),
    )
}

/// Render Table 1.
pub fn render_table1() -> String {
    let rows = experiments::table1();
    let table = markdown_table(
        &[
            "model",
            "nodes",
            "open-source (ours)",
            "optimized (ours)",
            "speedup (ours)",
            "paper open",
            "paper optimized",
            "paper speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.nodes.to_string(),
                    fmt_secs(r.open_source_secs),
                    fmt_secs(r.optimized_secs),
                    format!("{:.0}%", r.speedup * 100.0),
                    fmt_secs(r.paper_open_secs),
                    fmt_secs(r.paper_opt_secs),
                    format!("{:.0}%", (r.paper_open_secs / r.paper_opt_secs - 1.0) * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("## Table 1 — total improvement, open source vs fully optimized\n\n{table}")
}

/// Render Table 2.
pub fn render_table2() -> String {
    let rows = experiments::table2();
    let table = markdown_table(
        &["description", "hardware", "batch", "reported", "modelled (ours)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.description.clone(),
                    r.hardware.clone(),
                    r.batch.to_string(),
                    format!("{:.0} min", r.reported_minutes),
                    r.modeled_minutes
                        .map(|m| format!("{m:.0} min"))
                        .unwrap_or_else(|| "—".into()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!("## Table 2 — 90-epoch ResNet-50 wall time vs the state of the art\n\n{table}")
}

/// Render the extension experiments (not in the paper): ablations of the
/// design choices DESIGN.md calls out, plus post-paper techniques built on
/// the same substrate.
pub fn render_extensions() -> String {
    use dcnn_core::collectives::{
        Allreduce, CostModel, Fp16Allreduce, Hierarchical, MultiColor,
    };
    use dcnn_core::gpusim::{DeviceModel, NodeModel};
    use dcnn_core::models::{alexnet, resnet50, vgg16};
    use dcnn_core::simnet::{FatTree, SimOptions};
    use dcnn_core::trainer::{EpochTimeModel, OptimizationFlags, Workload};

    let mut s = String::from("## Extensions — ablations and post-paper techniques\n\n");

    // Color-count ablation.
    let rows = experiments::color_ablation(16, 93e6);
    s.push_str("### Multi-color color-count ablation (16 nodes, 93 MB)\n\n");
    s.push_str(&markdown_table(
        &["colors", "time", "Gbit/s"],
        &rows
            .iter()
            .map(|r| vec![r.colors.to_string(), fmt_secs(r.secs), format!("{:.1}", r.gbps)])
            .collect::<Vec<_>>(),
    ));

    // Node-mapping ablation.
    let rows = experiments::mapping_ablation(32, 93e6, 4);
    s.push_str("\n### Rank→node mapping ablation (32 nodes; §4.2's claim)\n\n");
    s.push_str(&markdown_table(
        &["mapping", "time"],
        &rows.iter().map(|r| vec![r.mapping.clone(), fmt_secs(r.secs)]).collect::<Vec<_>>(),
    ));

    // Algorithm extensions on the fabric.
    let topo = FatTree::minsky(32);
    let cost = CostModel::default();
    let opts = SimOptions::default();
    let t = |a: &dyn Allreduce| {
        fmt_secs(a.schedule(32, 102e6, &cost).simulate(&topo, &opts).makespan)
    };
    s.push_str("\n### Post-paper allreduce variants (32 nodes, 102 MB ResNet-50 payload)\n\n");
    s.push_str(&markdown_table(
        &["variant", "time"],
        &[
            vec!["multicolor-4 (paper)".into(), t(&MultiColor::new(4))],
            vec!["hierarchical 4-per-group".into(), t(&Hierarchical::new(4, 4))],
            vec!["fp16 multicolor-4".into(), t(&Fp16Allreduce::new(MultiColor::new(4)))],
        ],
    ));

    // Layer-wise overlap.
    let m = EpochTimeModel::minsky(32);
    let wl = Workload::imagenet_1k();
    let census = resnet50();
    let flags = OptimizationFlags::fully_optimized();
    let plain = m.epoch(&census, &wl, 64, &flags, Some(102e6));
    let over = m.epoch_with_overlap(&census, &wl, 64, &flags, Some(102e6));
    s.push_str("\n### Layer-wise comm/compute overlap (Goyal-style, ResNet-50, 32 nodes)\n\n");
    s.push_str(&markdown_table(
        &["schedule", "allreduce exposed/epoch", "epoch total"],
        &[
            vec!["sequential (paper)".into(), fmt_secs(plain.allreduce), fmt_secs(plain.total())],
            vec!["overlapped".into(), fmt_secs(over.allreduce), fmt_secs(over.total())],
        ],
    ));

    // Memory feasibility and classic-model throughput.
    let dev = DeviceModel::p100();
    let node = NodeModel::minsky();
    s.push_str("\n### P100 memory feasibility & classic-model throughput\n\n");
    s.push_str(&markdown_table(
        &["model", "params M", "max batch / P100", "img/s / P100 (b=32)"],
        &[resnet50(), alexnet(), vgg16()]
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    format!("{:.1}", c.param_count() as f64 / 1e6),
                    dev.max_batch(c).to_string(),
                    format!("{:.0}", dev.train_throughput(c, 32)),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    let _ = node;
    s
}

/// One rank's communication counters from a real allreduce run on the
/// threaded runtime (not the virtual-time simulator): what the runtime's
/// tracing/diagnostics layer measures while the collective executes.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CommRow {
    /// Rank within the run.
    pub rank: usize,
    /// Bytes this rank pushed onto the wire.
    pub bytes_sent: u64,
    /// Messages this rank pushed onto the wire.
    pub msgs_sent: u64,
    /// Milliseconds this rank's receives spent blocked.
    pub recv_wait_ms: f64,
    /// High-water mark of the out-of-order message stash.
    pub stash_hwm: u64,
    /// Milliseconds inside the allreduce phase.
    pub allreduce_ms: f64,
    /// High-water mark of concurrently in-flight async bucket reduces.
    pub async_inflight_hwm: u64,
    /// Milliseconds the rank spent blocked draining bucket handles.
    pub bucket_wait_ms: f64,
    /// Nonblocking bucket reduces this rank completed (one timestamped
    /// launch/done span each).
    pub bucket_spans: u64,
    /// Average bytes in flight across the rank's bucket-span window — the
    /// measurement adaptive bucket sizing steers toward its budget.
    pub inflight_bytes_avg: u64,
}

/// Run the paper's multi-color allreduce for real across `nodes` rank
/// threads on a `elems`-element buffer — as four overlap-engine buckets
/// launched through the nonblocking API, the shape the bucketed trainer
/// drives — and collect per-rank counters.
pub fn comm_rows(nodes: usize, elems: usize, policy: &AlgoPolicy) -> Vec<CommRow> {
    use dcnn_core::collectives::{ClusterBuilder, Tuner, TunerConfig};
    use std::sync::Arc;
    // A fixed policy is a one-candidate tuner: selection degenerates to the
    // pinned algorithm, and both policy shapes drive the same launch path.
    let cfg = match policy {
        AlgoPolicy::Fixed(a) => TunerConfig::with_candidates(vec![*a]),
        AlgoPolicy::Auto(cfg) => cfg.clone(),
    };
    // Per-size phase label(s) for the report: parameterizations of one
    // algorithm share a phase name, so deduplicate before summing.
    let phase_names: std::collections::BTreeSet<&'static str> =
        cfg.candidates.iter().map(|c| c.name()).collect();
    let run = ClusterBuilder::new(nodes).run(move |c| {
        let mut tuner = Tuner::new(cfg.clone());
        let bucket = (elems / 4).max(1);
        let mut pending = Vec::new();
        let mut off = 0;
        while off < elems {
            let len = bucket.min(elems - off);
            let label: Arc<str> = Arc::from(format!("bucket.{}", pending.len()));
            let sel = tuner.select(pending.len(), (len * 4) as u64, c.size(), false);
            pending.push(c.allreduce_async_labeled(
                sel.handle,
                vec![c.rank() as f32 + 1.0; len],
                Some(label),
            ));
            off += len;
        }
        for p in pending {
            let _ = p.wait();
        }
    });
    run.stats
        .iter()
        .enumerate()
        .map(|(rank, s)| CommRow {
            rank,
            bytes_sent: s.bytes_sent,
            msgs_sent: s.msgs_sent,
            recv_wait_ms: s.recv_wait_ns as f64 / 1e6,
            stash_hwm: s.stash_hwm,
            allreduce_ms: phase_names.iter().map(|n| s.phase(n)).sum::<u64>() as f64 / 1e6,
            async_inflight_hwm: s.async_inflight_hwm,
            bucket_wait_ms: s.bucket_wait_ns as f64 / 1e6,
            bucket_spans: s.bucket_spans.len() as u64,
            inflight_bytes_avg: s.inflight_bytes_avg(0),
        })
        .collect()
}

/// Render the `comm` experiment: per-rank runtime counters for a real
/// multi-color allreduce (8 ranks, 256 KiB payload in four async buckets).
pub fn render_comm() -> String {
    let rows = comm_rows(8, 65_536, &AlgoPolicy::Fixed(AllreduceAlgo::MultiColor(4)));
    let table = markdown_table(
        &[
            "rank",
            "bytes sent",
            "msgs",
            "recv wait ms",
            "stash hwm",
            "allreduce ms",
            "inflight hwm",
            "bucket wait ms",
            "spans",
            "inflight B avg",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.rank.to_string(),
                    r.bytes_sent.to_string(),
                    r.msgs_sent.to_string(),
                    format!("{:.2}", r.recv_wait_ms),
                    r.stash_hwm.to_string(),
                    format!("{:.2}", r.allreduce_ms),
                    r.async_inflight_hwm.to_string(),
                    format!("{:.2}", r.bucket_wait_ms),
                    r.bucket_spans.to_string(),
                    r.inflight_bytes_avg.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!(
        "## Comm — runtime counters for a real multi-color allreduce (8 ranks, 256 KiB, 4 async buckets)\n\n\
         Per-rank counters from the threaded runtime's diagnostics layer; the payload travels \
         through the nonblocking bucket engine, so the in-flight high-water mark, bucket wait \
         and per-bucket launch/done spans (with their windowed average of in-flight bytes — \
         the signal adaptive bucket sizing steers on) show real overlap. Set DCNN_TRACE=1 \
         for the full per-message event log.\n\n{table}"
    )
}

/// Every experiment name accepted by the harnesses.
pub const ALL_EXPERIMENTS: [&str; 14] = [
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "table1", "table2", "ext", "comm",
];

/// Serialize one experiment's rows as pretty JSON (for plotting scripts and
/// downstream analysis).
pub fn to_json(name: &str, scale: &AccuracyScale) -> String {
    fn j<T: serde::Serialize>(rows: &T) -> String {
        serde_json::to_string_pretty(rows).expect("rows serialize")
    }
    match name {
        "fig5" => j(&experiments::fig5(16, true)),
        "fig6" => j(&experiments::fig6()),
        "fig7" => j(&experiments::fig7()),
        "fig8" => j(&experiments::fig8()),
        "fig9" => j(&experiments::fig9()),
        "fig10" => j(&experiments::fig10()),
        "fig11" => j(&experiments::fig11()),
        "fig12" => j(&experiments::fig12()),
        "fig13" | "fig15" => j(&experiments::fig13_15(scale)),
        "fig14" | "fig16" => j(&experiments::fig14_16(scale)),
        "table1" => j(&experiments::table1()),
        "table2" => j(&experiments::table2()),
        "ext" => j(&(experiments::color_ablation(16, 93e6), experiments::mapping_ablation(32, 93e6, 4))),
        "comm" => j(&comm_rows(8, 65_536, &AlgoPolicy::Fixed(AllreduceAlgo::MultiColor(4)))),
        other => panic!("unknown experiment {other}; try one of {ALL_EXPERIMENTS:?}"),
    }
}

/// Render one experiment by name (accuracy figures at the given scale).
pub fn render(name: &str, scale: &AccuracyScale) -> String {
    match name {
        "fig5" => render_fig5(true),
        "fig6" => render_fig6(),
        "fig7" => render_fig7(),
        "fig8" => render_fig8(),
        "fig9" => render_fig9(),
        "fig10" => render_fig10(),
        "fig11" => render_fig11(),
        "fig12" => render_fig12(),
        "fig13" | "fig15" => render_fig13_15(scale),
        "fig14" | "fig16" => render_fig14_16(scale),
        "table1" => render_table1(),
        "table2" => render_table2(),
        "ext" => render_extensions(),
        "comm" => render_comm(),
        other => panic!("unknown experiment {other}; try one of {ALL_EXPERIMENTS:?}"),
    }
}
