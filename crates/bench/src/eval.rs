//! Scenario-matrix evaluation engine behind the `dcnn-eval` binary.
//!
//! Drives a configurable matrix of {allreduce algorithm or `auto`} ×
//! {world size} × {payload} × {bucketing / overlap mode} × {transport} ×
//! {optional fault script} over the *real* runtime — in-process rank
//! threads, or genuine TCP processes re-launched through `dcnn-launch`'s
//! `eval-cell` workload — and feeds the identical
//! [`CellSpec`](dcnn_core::collectives::CellSpec) matrix through
//! `dcnn-simnet`. Three artifacts land in the results directory:
//!
//! * one schema-versioned JSON row per cell (`cell-NNN.json`),
//! * `report.md` — the per-size winner table (our Figure 5/6 analog) plus
//!   the real-vs-simulated discrepancy table,
//! * `discrepancy.json` — every cell's real and simulated nanoseconds with
//!   the relative error, sorted by |relative error| descending (the
//!   simulator honesty trajectory later perf PRs regress against).

use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

use dcnn_core::collectives::cell::{json_f64, json_str, json_u64, json_u64_array};
use dcnn_core::collectives::{
    CellMeasurement, CellSpec, ClusterBuilder, CommStats, CostModel, RuntimeConfig,
};
use serde::Serialize;
use serde_json::Value;

/// Schema tag written into every row (bump when the row shape changes;
/// `dcnn-perf --baseline` analogously refuses foreign schemas).
pub const SCHEMA: &str = "dcnn-eval-v1";

/// The matrix to sweep: the cross product of every axis.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Algorithm axis, in `DCNN_ALGO` syntax (includes `auto`).
    pub algos: Vec<String>,
    /// World-size axis.
    pub worlds: Vec<usize>,
    /// Payload axis, bytes.
    pub payloads: Vec<usize>,
    /// Bucketing axis: `(bucket_bytes, overlap)`; `(0, "fused")` is the
    /// single blocking allreduce.
    pub bucketings: Vec<(usize, String)>,
    /// Transport axis: `threads` and/or `tcp`.
    pub transports: Vec<String>,
    /// Timed iterations per cell.
    pub iters: usize,
    /// Fault axis: `None` (clean run) and/or `DCNN_FAULT` scripts.
    pub faults: Vec<Option<String>>,
}

impl Default for MatrixSpec {
    /// The default local sweep: all six algorithms plus `auto`, two world
    /// sizes, a small and a large payload, fused, in-process — 28 cells.
    fn default() -> Self {
        let mut algos: Vec<String> = dcnn_core::collectives::AllreduceAlgo::all()
            .iter()
            .map(|a| a.to_string())
            .collect();
        algos.push("auto".to_string());
        MatrixSpec {
            algos,
            worlds: vec![2, 4],
            payloads: vec![16 * 1024, 1 << 20],
            bucketings: vec![(0, "fused".to_string())],
            transports: vec!["threads".to_string()],
            iters: 3,
            faults: vec![None],
        }
    }
}

/// Parse one `--bucketing` item: `fused` or `BYTES:MODE` (mode `drain` or
/// `hooked`), e.g. `65536:hooked`.
pub fn parse_bucketing(s: &str) -> Result<(usize, String), String> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("fused") {
        return Ok((0, "fused".to_string()));
    }
    let (bytes, mode) = s
        .split_once(':')
        .ok_or_else(|| format!("bucketing {s:?}: expected \"fused\" or \"BYTES:drain|hooked\""))?;
    let bytes: usize = bytes
        .trim()
        .parse()
        .map_err(|_| format!("bucketing {s:?}: bucket bytes must be an unsigned integer"))?;
    if bytes == 0 {
        return Err(format!("bucketing {s:?}: use \"fused\" for the unbucketed cell"));
    }
    match mode.trim() {
        m @ ("drain" | "hooked") => Ok((bytes, m.to_string())),
        other => Err(format!("bucketing {s:?}: unknown overlap mode {other:?}")),
    }
}

impl MatrixSpec {
    /// Expand the cross product into concrete cells, in a stable order.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::new();
        for transport in &self.transports {
            for world in &self.worlds {
                for payload in &self.payloads {
                    for (bucket, overlap) in &self.bucketings {
                        for algo in &self.algos {
                            for fault in &self.faults {
                                out.push(CellSpec {
                                    algo: algo.clone(),
                                    world: *world,
                                    payload_bytes: *payload,
                                    bucket_bytes: *bucket,
                                    overlap: overlap.clone(),
                                    transport: transport.clone(),
                                    iters: self.iters,
                                    fault: fault.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One result row: the cell, what the real runtime measured, and what the
/// simulator predicted for the same cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellRow {
    /// Row format version ([`SCHEMA`]).
    pub schema: String,
    /// Stable cell identity ([`CellSpec::id`]).
    pub id: String,
    /// The cell that produced this row.
    pub cell: CellSpec,
    /// Fastest single-iteration wall time, nanoseconds (0 when `error`).
    pub wall_ns: u64,
    /// Payload bytes reduced per iteration.
    pub bytes: u64,
    /// Effective algorithm bandwidth, payload GB/s (`bytes / wall_ns`).
    pub gbytes_per_sec: f64,
    /// The decision table (`auto`) or fixed algorithm that ran.
    pub algo_choices: String,
    /// CRC-32 of the reduced buffer (identical across ranks by assertion).
    pub fingerprint: u32,
    /// Rank 0's per-peer bytes sent over the measurement.
    pub link_bytes_sent: Vec<u64>,
    /// Rank 0's busiest outgoing link, bytes.
    pub link_bytes_max: u64,
    /// Rank 0's busiest-link / mean-link ratio (1.0 = perfectly balanced).
    pub link_imbalance: f64,
    /// Simulated single-iteration time for the same cell, nanoseconds.
    pub sim_ns: f64,
    /// Simulated peak link utilization, `[0, 1]`.
    pub sim_max_link_utilization: f64,
    /// `(wall_ns - sim_ns) / sim_ns`; 0 when either side is missing.
    pub rel_err: f64,
    /// Why the cell produced no measurement (fault cells that died, spawn
    /// failures); measurement fields are zeroed when set.
    pub error: Option<String>,
}

impl CellRow {
    /// Parse a row out of a JSON document (the inverse of the `Serialize`
    /// impl; the vendored serde shim only parses untyped values). The
    /// caller checks `schema` first — this assumes a [`SCHEMA`] document.
    pub fn from_value(v: &Value) -> Result<CellRow, String> {
        let error = match v.get("error") {
            None | Some(Value::Null) => None,
            Some(e) => Some(
                e.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "cell row: error must be a string or null".to_string())?,
            ),
        };
        Ok(CellRow {
            schema: json_str(v, "schema", "cell row")?,
            id: json_str(v, "id", "cell row")?,
            cell: CellSpec::from_value(
                v.get("cell").ok_or_else(|| "cell row: missing cell".to_string())?,
            )?,
            wall_ns: json_u64(v, "wall_ns", "cell row")?,
            bytes: json_u64(v, "bytes", "cell row")?,
            gbytes_per_sec: json_f64(v, "gbytes_per_sec", "cell row")?,
            algo_choices: json_str(v, "algo_choices", "cell row")?,
            fingerprint: json_u64(v, "fingerprint", "cell row")? as u32,
            link_bytes_sent: json_u64_array(v, "link_bytes_sent", "cell row")?,
            link_bytes_max: json_u64(v, "link_bytes_max", "cell row")?,
            link_imbalance: json_f64(v, "link_imbalance", "cell row")?,
            sim_ns: json_f64(v, "sim_ns", "cell row")?,
            sim_max_link_utilization: json_f64(v, "sim_max_link_utilization", "cell row")?,
            rel_err: json_f64(v, "rel_err", "cell row")?,
            error,
        })
    }
}

/// Execute a `threads` cell: every rank is an in-process thread on a
/// default-configured cluster (the ambient `DCNN_*` environment must not
/// leak into matrix cells).
pub fn run_threads_cell(cell: &CellSpec) -> Result<CellMeasurement, String> {
    let c = cell.clone();
    let run = ClusterBuilder::new(cell.world)
        .configure(RuntimeConfig::default())
        .run(move |comm| c.measure_on_comm(comm));
    let measurements: Result<Vec<CellMeasurement>, String> = run.results.into_iter().collect();
    let measurements = measurements?;
    let fp0 = measurements[0].fingerprint;
    if measurements.iter().any(|m| m.fingerprint != fp0) {
        return Err(format!("cell {}: ranks disagree on the reduced bits", cell.id()));
    }
    Ok(measurements[0].clone())
}

/// Execute a `tcp` cell as real OS processes: re-launch through
/// `dcnn-launch --workload eval-cell` with the cell exported as `DCNN_*`
/// variables, and harvest rank 0's JSON measurement line from stdout.
pub fn run_tcp_cell(cell: &CellSpec, launch: &Path) -> Result<CellMeasurement, String> {
    let out = Command::new(launch)
        .arg("--ranks")
        .arg(cell.world.to_string())
        .arg("--workload")
        .arg("eval-cell")
        .envs(cell.to_env())
        .env("DCNN_TRANSPORT", "tcp")
        .output()
        .map_err(|e| format!("cell {}: spawning {}: {e}", cell.id(), launch.display()))?;
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        return Err(format!(
            "cell {}: dcnn-launch exited with {}: {}",
            cell.id(),
            out.status,
            stderr.lines().last().unwrap_or("")
        ));
    }
    stdout
        .lines()
        .rev()
        .find_map(|l| CellMeasurement::from_json(l.trim()).ok())
        .ok_or_else(|| {
            format!("cell {}: no measurement JSON on dcnn-launch stdout", cell.id())
        })
}

/// Build the result row for a cell: attach the simulator's prediction
/// (cost model calibrated from the cell's own measured bandwidth) and the
/// per-link counters to the measurement — or an error row.
pub fn row_from(cell: &CellSpec, measured: Result<CellMeasurement, String>) -> CellRow {
    let (m, error) = match measured {
        Ok(m) => (Some(m), None),
        Err(e) => (None, Some(e)),
    };
    let wall_ns = m.as_ref().map_or(0, |m| m.wall_ns);
    let bytes = m.as_ref().map_or(0, |m| m.bytes);
    let cost = if wall_ns > 0 {
        CostModel::measured(bytes, wall_ns)
    } else {
        CostModel::default()
    };
    let sim = cell.simulate(&cost).ok();
    let sim_ns = sim.as_ref().map_or(0.0, |s| s.sim_ns);
    let rel_err = if wall_ns > 0 && sim_ns > 0.0 {
        (wall_ns as f64 - sim_ns) / sim_ns
    } else {
        0.0
    };
    let links = m.as_ref().map_or_else(Vec::new, |m| m.link_bytes_sent.clone());
    CellRow {
        schema: SCHEMA.to_string(),
        id: cell.id(),
        cell: cell.clone(),
        wall_ns,
        bytes,
        gbytes_per_sec: if wall_ns > 0 { bytes as f64 / wall_ns as f64 } else { 0.0 },
        algo_choices: m.as_ref().map_or_else(String::new, |m| m.algo_choices.clone()),
        fingerprint: m.as_ref().map_or(0, |m| m.fingerprint),
        link_bytes_max: CommStats::link_bytes_max(0, &links),
        link_imbalance: CommStats::link_imbalance(0, &links),
        link_bytes_sent: links,
        sim_ns,
        sim_max_link_utilization: sim.as_ref().map_or(0.0, |s| s.max_link_utilization),
        rel_err,
        error,
    }
}

/// Run every cell of the matrix, writing one `cell-NNN.json` row into
/// `out_dir` as it completes. `launch` locates the `dcnn-launch` binary
/// for `tcp` cells; `progress` receives one line per cell.
pub fn run_matrix(
    spec: &MatrixSpec,
    out_dir: &Path,
    launch: &Path,
    mut progress: impl FnMut(&str),
) -> io::Result<Vec<CellRow>> {
    std::fs::create_dir_all(out_dir)?;
    let cells = spec.cells();
    let mut rows = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let measured = match cell.transport.as_str() {
            "threads" => run_threads_cell(cell),
            "tcp" => run_tcp_cell(cell, launch),
            other => Err(format!("cell {}: unknown transport {other:?}", cell.id())),
        };
        let row = row_from(cell, measured);
        let path = out_dir.join(format!("cell-{i:03}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(&row).expect("row serializes"))?;
        match &row.error {
            None => progress(&format!(
                "[{}/{}] {}  {:.3} ms real / {:.3} ms sim",
                i + 1,
                cells.len(),
                row.id,
                row.wall_ns as f64 / 1e6,
                row.sim_ns / 1e6
            )),
            Some(e) => progress(&format!("[{}/{}] {}  FAILED: {e}", i + 1, cells.len(), row.id)),
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Load every `cell-*.json` row from a results directory (`--report`
/// mode). Rows with a foreign schema are skipped with a note pushed to
/// `warnings` — the eval analog of the perf baseline schema gate.
pub fn load_rows(dir: &Path, warnings: &mut Vec<String>) -> io::Result<Vec<CellRow>> {
    let mut rows = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("cell-") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for p in paths {
        let text = std::fs::read_to_string(&p)?;
        let doc: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                warnings.push(format!("{}: not JSON: {e:?}", p.display()));
                continue;
            }
        };
        match doc.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            other => {
                warnings.push(format!(
                    "{}: schema {} (expected {SCHEMA:?}); skipped",
                    p.display(),
                    other.map_or_else(|| "<none>".to_string(), |s| format!("{s:?}"))
                ));
                continue;
            }
        }
        match CellRow::from_value(&doc) {
            Ok(row) => rows.push(row),
            Err(e) => warnings.push(format!("{}: not a cell row: {e}", p.display())),
        }
    }
    Ok(rows)
}

/// Group key for the winner table: everything about a cell except the
/// algorithm axis.
fn group_key(c: &CellSpec) -> String {
    let bucketing = if c.bucket_bytes == 0 {
        "fused".to_string()
    } else {
        format!("b{}-{}", c.bucket_bytes, c.overlap)
    };
    let fault = c.fault.as_ref().map(|f| format!(" fault={f}")).unwrap_or_default();
    format!(
        "transport={} world={} payload={} {bucketing}{fault}",
        c.transport, c.world, c.payload_bytes
    )
}

/// The per-size winner table: for each (transport, world, payload,
/// bucketing) group, the fastest algorithm — the repo's Figure 5/6
/// crossover story on the real fabric. One greppable `winner ...` line
/// per group.
pub fn winner_report(rows: &[CellRow]) -> String {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<String, Vec<&CellRow>> = BTreeMap::new();
    for r in rows.iter().filter(|r| r.error.is_none() && r.wall_ns > 0) {
        groups.entry(group_key(&r.cell)).or_default().push(r);
    }
    let mut s = String::from("## Winner per size class\n\n");
    if groups.is_empty() {
        s.push_str("no successful cells\n");
        return s;
    }
    for (key, mut group) in groups {
        group.sort_by_key(|r| r.wall_ns);
        let win = group[0];
        let runner = group.get(1).map(|r| {
            format!(
                "; runner-up {} +{:.0}%",
                r.cell.algo,
                (r.wall_ns as f64 / win.wall_ns as f64 - 1.0) * 100.0
            )
        });
        s.push_str(&format!(
            "winner {key}: {} ({:.3} ms, {:.2} GB/s{})\n",
            win.cell.algo,
            win.wall_ns as f64 / 1e6,
            win.gbytes_per_sec,
            runner.unwrap_or_default()
        ));
    }
    s
}

/// The real-vs-simulated discrepancy table, sorted by |relative error|
/// descending — the harness's honesty check on `dcnn-simnet`.
pub fn discrepancy_report(rows: &[CellRow]) -> String {
    let mut s = String::from(
        "## Real vs simulated (sorted by |relative error|)\n\n\
         | cell | real ms | sim ms | rel err |\n|---|---|---|---|\n",
    );
    for r in discrepancy_sorted(rows) {
        s.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:+.1}% |\n",
            r.id,
            r.wall_ns as f64 / 1e6,
            r.sim_ns / 1e6,
            r.rel_err * 100.0
        ));
    }
    s
}

/// Successful rows sorted by |relative error| descending (the order the
/// `discrepancy.json` artifact is written in).
pub fn discrepancy_sorted(rows: &[CellRow]) -> Vec<&CellRow> {
    let mut ok: Vec<&CellRow> =
        rows.iter().filter(|r| r.error.is_none() && r.sim_ns > 0.0).collect();
    ok.sort_by(|a, b| b.rel_err.abs().total_cmp(&a.rel_err.abs()));
    ok
}

/// The full `report.md` body: header, winner table, discrepancy table,
/// failed cells.
pub fn report(rows: &[CellRow]) -> String {
    let failed: Vec<&CellRow> = rows.iter().filter(|r| r.error.is_some()).collect();
    let mut s = format!(
        "# dcnn-eval report\n\nschema {SCHEMA}; {} cells, {} failed.\n\n",
        rows.len(),
        failed.len()
    );
    s.push_str(&winner_report(rows));
    s.push('\n');
    s.push_str(&discrepancy_report(rows));
    if !failed.is_empty() {
        s.push_str("\n## Failed cells\n\n");
        for r in failed {
            s.push_str(&format!("- {}: {}\n", r.id, r.error.as_deref().unwrap_or("?")));
        }
    }
    s
}

/// Minimal discrepancy artifact entry (`discrepancy.json`).
#[derive(Debug, Serialize)]
pub struct DiscrepancyEntry {
    /// Cell identity.
    pub id: String,
    /// Real nanoseconds.
    pub wall_ns: u64,
    /// Simulated nanoseconds.
    pub sim_ns: f64,
    /// `(wall - sim) / sim`.
    pub rel_err: f64,
}

/// Serialize the sorted discrepancy artifact.
pub fn discrepancy_json(rows: &[CellRow]) -> String {
    let entries: Vec<DiscrepancyEntry> = discrepancy_sorted(rows)
        .into_iter()
        .map(|r| DiscrepancyEntry {
            id: r.id.clone(),
            wall_ns: r.wall_ns,
            sim_ns: r.sim_ns,
            rel_err: r.rel_err,
        })
        .collect();
    serde_json::to_string_pretty(&entries).expect("entries serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_is_at_least_24_cells() {
        let cells = MatrixSpec::default().cells();
        assert!(cells.len() >= 24, "default sweep too small: {}", cells.len());
        // Identities are unique — the id is the join key across artifacts.
        let ids: std::collections::BTreeSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn bucketing_syntax_parses_and_rejects() {
        assert_eq!(parse_bucketing("fused").unwrap(), (0, "fused".to_string()));
        assert_eq!(parse_bucketing("65536:drain").unwrap(), (65536, "drain".to_string()));
        assert_eq!(parse_bucketing(" 4096:hooked ").unwrap(), (4096, "hooked".to_string()));
        for bad in ["0:drain", "65536:eager", "65536", "lots:drain"] {
            assert!(parse_bucketing(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rows_are_schema_versioned_and_round_trip() {
        let cell = CellSpec {
            algo: "ring".into(),
            world: 2,
            payload_bytes: 4096,
            bucket_bytes: 0,
            overlap: "fused".into(),
            transport: "threads".into(),
            iters: 1,
            fault: None,
        };
        let row = row_from(&cell, run_threads_cell(&cell));
        assert_eq!(row.schema, SCHEMA);
        assert!(row.error.is_none(), "{:?}", row.error);
        assert!(row.wall_ns > 0 && row.sim_ns > 0.0);
        let text = serde_json::to_string(&row).expect("serializes");
        let doc: Value = serde_json::from_str(&text).expect("parses");
        let back = CellRow::from_value(&doc).expect("typed");
        assert_eq!(back.id, row.id);
        assert_eq!(back.fingerprint, row.fingerprint);
        assert_eq!(back.cell, row.cell);
        assert_eq!(back.wall_ns, row.wall_ns);
        assert!(back.error.is_none());
    }

    #[test]
    fn winner_report_names_a_winner_per_group() {
        let mk = |algo: &str, payload: usize, wall: u64| {
            let cell = CellSpec {
                algo: algo.into(),
                world: 2,
                payload_bytes: payload,
                bucket_bytes: 0,
                overlap: "fused".into(),
                transport: "threads".into(),
                iters: 1,
                fault: None,
            };
            let mut row = row_from(&cell, Err("synthetic".into()));
            row.error = None;
            row.wall_ns = wall;
            row
        };
        let rows =
            vec![mk("ring", 4096, 200), mk("halving-doubling", 4096, 100), mk("ring", 1 << 20, 50)];
        let report = winner_report(&rows);
        assert!(
            report.contains("winner transport=threads world=2 payload=4096 fused: halving-doubling"),
            "{report}"
        );
        assert!(
            report.contains("winner transport=threads world=2 payload=1048576 fused: ring"),
            "{report}"
        );
        assert!(report.matches("winner ").count() == 2, "{report}");
    }

    /// The harness's own honesty check: a real threads-mode ring cell at a
    /// small size must land within a (very generous) band of the
    /// simulator's prediction once the cost model is calibrated from the
    /// measured bandwidth. Guards against unit slips (ns vs s, bytes vs
    /// elements) on either side of the discrepancy report.
    #[test]
    fn threads_ring_cell_tracks_the_simulator() {
        let cell = CellSpec {
            algo: "ring".into(),
            world: 2,
            payload_bytes: 64 * 1024,
            bucket_bytes: 0,
            overlap: "fused".into(),
            transport: "threads".into(),
            iters: 3,
            fault: None,
        };
        let row = row_from(&cell, run_threads_cell(&cell));
        assert!(row.error.is_none(), "{:?}", row.error);
        assert!(row.wall_ns > 0 && row.sim_ns > 0.0);
        let ratio = row.wall_ns as f64 / row.sim_ns;
        assert!(
            (1e-2..=1e2).contains(&ratio),
            "real {} ns vs sim {} ns is outside the 100x honesty band",
            row.wall_ns,
            row.sim_ns
        );
    }
}
