//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro                      # all experiments, full accuracy scale
//! repro quick                # all experiments, quick accuracy scale
//! repro fig5 fig10           # a subset
//! repro --json results/ ...  # additionally write <name>.json row dumps
//! ```

use dcnn_bench::{render, to_json, ALL_EXPERIMENTS};
use dcnn_core::experiments::AccuracyScale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let scale = if quick { AccuracyScale::quick() } else { AccuracyScale::full() };
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a directory").clone());
    let mut skip_next = false;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" {
                skip_next = true;
                return false;
            }
            *a != "quick"
        })
        .map(String::as_str)
        .collect();
    let list: Vec<&str> =
        if wanted.is_empty() { ALL_EXPERIMENTS.to_vec() } else { wanted };

    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }
    println!("# dist-cnn reproduction — Kumar et al., CLUSTER 2018\n");
    for name in list {
        let t0 = std::time::Instant::now();
        let section = render(name, &scale);
        println!("{section}");
        if let Some(dir) = &json_dir {
            let path = std::path::Path::new(dir).join(format!("{name}.json"));
            std::fs::write(&path, to_json(name, &scale)).expect("write json");
            println!("_rows written to {}_", path.display());
        }
        println!("_generated in {:.1}s_\n", t0.elapsed().as_secs_f64());
    }
}
