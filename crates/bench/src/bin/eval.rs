//! `dcnn-eval` — the scenario-matrix evaluation harness.
//!
//! Sweeps a matrix of {allreduce algorithm | `auto`} × {world size} ×
//! {payload} × {bucketing/overlap} × {transport} × {fault script} over the
//! real runtime, cross-checks every cell against `dcnn-simnet`, and writes
//! schema-versioned JSON rows plus a winner/discrepancy report:
//!
//! ```sh
//! # Default 28-cell sweep (all algorithms + auto, threads transport):
//! cargo run --release -p dcnn-bench --bin dcnn-eval
//!
//! # CI smoke: ring vs tree over threads and 2-rank TCP processes:
//! dcnn-eval --algos ring,multicolor:2 --worlds 2 --payloads 4096,262144 \
//!           --transports threads,tcp --iters 2 --out target/eval-smoke
//!
//! # Re-aggregate an existing results directory:
//! dcnn-eval --report target/eval/1723000000
//! ```
//!
//! Exit status: `0` on success (even when individual fault cells die —
//! they become error rows), `1` when *every* cell failed, `2` on usage
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use dcnn_bench::eval::{self, MatrixSpec};

struct Args {
    spec: MatrixSpec,
    out: Option<PathBuf>,
    launch: Option<PathBuf>,
    report_dir: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dcnn-eval [--algos A,B,..] [--worlds N,M] [--payloads BYTES,..]\n\
         \x20                [--bucketings fused|BYTES:drain|BYTES:hooked,..]\n\
         \x20                [--transports threads,tcp] [--iters N] [--faults SPEC,..]\n\
         \x20                [--out DIR] [--launch PATH]\n\
         \x20      dcnn-eval --report DIR"
    );
    ExitCode::from(2)
}

fn split_list(v: &str) -> Vec<String> {
    v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args =
        Args { spec: MatrixSpec::default(), out: None, launch: None, report_dir: None };
    let mut it = std::env::args().skip(1);
    let bad = |msg: String| {
        eprintln!("dcnn-eval: {msg}");
        usage()
    };
    while let Some(a) = it.next() {
        let mut value = || it.next().ok_or_else(usage);
        match a.as_str() {
            "--algos" => args.spec.algos = split_list(&value()?),
            "--worlds" => {
                args.spec.worlds = split_list(&value()?)
                    .iter()
                    .map(|w| w.parse::<usize>().map_err(|_| bad(format!("bad world {w:?}"))))
                    .collect::<Result<_, _>>()?;
            }
            "--payloads" => {
                args.spec.payloads = split_list(&value()?)
                    .iter()
                    .map(|p| p.parse::<usize>().map_err(|_| bad(format!("bad payload {p:?}"))))
                    .collect::<Result<_, _>>()?;
            }
            "--bucketings" => {
                args.spec.bucketings = split_list(&value()?)
                    .iter()
                    .map(|b| eval::parse_bucketing(b).map_err(bad))
                    .collect::<Result<_, _>>()?;
            }
            "--transports" => args.spec.transports = split_list(&value()?),
            "--iters" => {
                let v = value()?;
                args.spec.iters =
                    v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| bad(format!(
                        "bad --iters {v:?}: expected an integer >= 1"
                    )))?;
            }
            "--faults" => {
                args.spec.faults =
                    split_list(&value()?).into_iter().map(Some).collect();
                args.spec.faults.insert(0, None);
            }
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--launch" => args.launch = Some(PathBuf::from(value()?)),
            "--report" => args.report_dir = Some(PathBuf::from(value()?)),
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("dcnn-eval: unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

/// Locate the `dcnn-launch` sibling binary for TCP cells: next to our own
/// executable first (cargo puts workspace binaries in one directory),
/// else whatever `PATH` resolves.
fn find_launch() -> PathBuf {
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let sibling = dir.join("dcnn-launch");
            if sibling.exists() {
                return sibling;
            }
        }
    }
    PathBuf::from("dcnn-launch")
}

fn write_report(dir: &std::path::Path, rows: &[eval::CellRow]) -> std::io::Result<()> {
    std::fs::write(dir.join("report.md"), eval::report(rows))?;
    std::fs::write(dir.join("discrepancy.json"), eval::discrepancy_json(rows))?;
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    // --report DIR: re-aggregate existing rows, no new runs.
    if let Some(dir) = &args.report_dir {
        let mut warnings = Vec::new();
        let rows = match eval::load_rows(dir, &mut warnings) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("dcnn-eval: cannot read {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        };
        for w in &warnings {
            eprintln!("dcnn-eval: warning: {w}");
        }
        if rows.is_empty() {
            eprintln!("dcnn-eval: no {} rows in {}", eval::SCHEMA, dir.display());
            return ExitCode::from(1);
        }
        if let Err(e) = write_report(dir, &rows) {
            eprintln!("dcnn-eval: cannot write report into {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        print!("{}", eval::report(&rows));
        eprintln!("dcnn-eval: refreshed report.md + discrepancy.json in {}", dir.display());
        return ExitCode::SUCCESS;
    }

    let out = args.out.unwrap_or_else(|| {
        let ts = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
        PathBuf::from("target").join("eval").join(ts.to_string())
    });
    let launch = args.launch.unwrap_or_else(find_launch);
    let cells = args.spec.cells();
    if cells.is_empty() {
        eprintln!("dcnn-eval: the matrix is empty — every axis needs at least one value");
        return ExitCode::from(2);
    }
    eprintln!("dcnn-eval: sweeping {} cells into {}", cells.len(), out.display());

    let rows = match eval::run_matrix(&args.spec, &out, &launch, |line| eprintln!("  {line}")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dcnn-eval: sweep failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = write_report(&out, &rows) {
        eprintln!("dcnn-eval: cannot write report into {}: {e}", out.display());
        return ExitCode::from(2);
    }
    print!("{}", eval::report(&rows));
    eprintln!("dcnn-eval: wrote {} rows + report.md + discrepancy.json to {}", rows.len(), out.display());

    if rows.iter().all(|r| r.error.is_some()) {
        eprintln!("dcnn-eval: every cell failed");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
