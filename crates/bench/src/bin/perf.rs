//! `dcnn-perf` — the hot-path performance baseline harness.
//!
//! Runs min-of-N microbenchmarks of the reduce kernels and the frame
//! encoder (see `dcnn_bench::perf`), writes `BENCH_<date>.json` into
//! `--out`, and optionally gates against a committed baseline:
//!
//! ```sh
//! # Full run, write the trajectory row into the repo root:
//! cargo run --release -p dcnn-bench --bin dcnn-perf -- --out .
//!
//! # CI smoke: quick iterations, fail on >20% tracked-kernel regression:
//! dcnn-perf --quick --out target/bench --baseline BENCH_2026-08-07.json
//! ```
//!
//! Exit status: `0` on success, `1` if any tracked row regresses past
//! `--max-regress` (default `0.20`), `2` on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dcnn_bench::perf;

struct Args {
    quick: bool,
    out: PathBuf,
    baseline: Option<PathBuf>,
    max_regress: f64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dcnn-perf [--quick] [--out DIR] [--baseline BENCH_*.json] [--max-regress FRAC]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args =
        Args { quick: false, out: PathBuf::from("."), baseline: None, max_regress: 0.20 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or_else(usage)?),
            "--baseline" => args.baseline = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--max-regress" => {
                let v = it.next().ok_or_else(usage)?;
                args.max_regress = v.parse().map_err(|_| usage())?;
            }
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("dcnn-perf: unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    eprintln!("dcnn-perf: running {} suite…", if args.quick { "quick" } else { "full" });
    let report = perf::run_suite(args.quick);
    for r in &report.rows {
        eprintln!(
            "  {:<32} {:>10.0} ns/iter  {:>8.2} GiB/s  {}",
            r.name,
            r.ns_per_iter,
            r.gib_per_s,
            if r.tracked { "tracked" } else { "-" }
        );
    }

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("dcnn-perf: cannot create {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    let path = args.out.join(format!("BENCH_{}.json", report.date));
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("dcnn-perf: serialize failed: {e:?}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(&path, json + "\n") {
        eprintln!("dcnn-perf: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    eprintln!("dcnn-perf: wrote {}", path.display());

    if let Some(baseline_path) = &args.baseline {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dcnn-perf: cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let baseline: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("dcnn-perf: baseline {} is not JSON: {e:?}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        match perf::baseline_schema(&baseline) {
            Some(s) if s == perf::SCHEMA => {}
            other => {
                // A stale or foreign report must not gate: its rows either
                // vanish silently (every kernel reads "no regression") or
                // carry incomparable numbers. Warn and skip instead.
                eprintln!(
                    "dcnn-perf: baseline {} has schema {} (expected {}); skipping the \
                     regression gate",
                    baseline_path.display(),
                    other.map_or_else(|| "<none>".to_string(), |s| format!("{s:?}")),
                    perf::SCHEMA
                );
                return ExitCode::SUCCESS;
            }
        }
        let hits = perf::regressions(&report, &baseline, args.max_regress);
        if !hits.is_empty() {
            eprintln!(
                "dcnn-perf: {} tracked kernel(s) regressed past {:.0}% vs {}:",
                hits.len(),
                args.max_regress * 100.0,
                baseline_path.display()
            );
            for h in &hits {
                eprintln!(
                    "  {:<32} {:>10.0} -> {:>10.0} ns/iter  (+{:.1}%)",
                    h.name,
                    h.baseline_ns,
                    h.current_ns,
                    h.slowdown * 100.0
                );
            }
            return ExitCode::from(1);
        }
        eprintln!(
            "dcnn-perf: all tracked kernels within {:.0}% of {}",
            args.max_regress * 100.0,
            baseline_path.display()
        );
    }
    ExitCode::SUCCESS
}
