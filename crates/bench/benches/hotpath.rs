//! Criterion microbenchmarks of the two hot paths the `dcnn-perf` baseline
//! tracks: the reduce kernels under every allreduce (vectorized vs scalar
//! reference, sizes spanning the Figure 5 message-size crossover) and the
//! frame encoder under every TCP send (bulk little-endian vectored vs the
//! staged per-element reference). Interactive counterpart of
//! `dcnn-perf` — same kernels, criterion's measurement loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dcnn_core::collectives::reduce::{self, reference};
use dcnn_core::collectives::transport::wire;
use dcnn_core::collectives::transport::Payload;

fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as i32 as f32) * 1e-4
        })
        .collect()
}

/// Vectorized reduce kernels against the scalar references.
fn bench_reduce_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduce_kernels");
    for n in [1usize << 10, 1 << 14, 1 << 17, 1 << 20] {
        g.throughput(Throughput::Bytes((n * 4) as u64));
        let src = fill(n, 3);
        let base = fill(n, 5);

        let mut dst = base.clone();
        g.bench_with_input(BenchmarkId::new("sum_into", n), &n, |b, _| {
            b.iter(|| reduce::sum_into(black_box(&mut dst), black_box(&src)))
        });
        let mut dst = base.clone();
        g.bench_with_input(BenchmarkId::new("sum_into_ref", n), &n, |b, _| {
            b.iter(|| reference::sum_into(black_box(&mut dst), black_box(&src)))
        });
        let mut out = vec![0.0f32; n];
        g.bench_with_input(BenchmarkId::new("sum_to", n), &n, |b, _| {
            b.iter(|| reduce::sum_to(black_box(&mut out), black_box(&base), black_box(&src)))
        });
        let mut dst = base.clone();
        g.bench_with_input(BenchmarkId::new("scale", n), &n, |b, _| {
            b.iter(|| reduce::scale(black_box(&mut dst), black_box(1.000_001)))
        });
    }
    g.finish();
}

/// Frame encoding: bulk vectored vs the staged reference encoder.
fn bench_frame_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_encode");
    for n in [1usize << 10, 1 << 14, 1 << 18] {
        g.throughput(Throughput::Bytes((n * 4) as u64));
        let payload = Payload::f32(fill(n, 11));

        let mut sink: Vec<u8> = Vec::with_capacity(n * 4 + 64);
        g.bench_with_input(BenchmarkId::new("vectored", n), &n, |b, _| {
            b.iter(|| {
                sink.clear();
                let body = wire::payload_wire_bytes(black_box(&payload));
                let parts = wire::frame_parts(0, 0, 0, wire::payload_kind(&payload), &body);
                wire::write_all_vectored(&mut sink, &[&parts.head, &body, &parts.crc])
                    .expect("vec write");
                black_box(sink.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("staged", n), &n, |b, _| {
            b.iter(|| black_box(wire::encode_frame(0, 0, 0, black_box(&payload)).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduce_kernels, bench_frame_encode);
criterion_main!(benches);
