//! Criterion microbenchmarks of the real (non-simulated) kernels: the
//! threaded allreduce algorithms, the DCT codec, GEMM/convolution, the
//! distributed shuffle and the data-parallel-table executors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dcnn_core::collectives::{run_cluster, AllreduceAlgo};
use dcnn_core::dimd::shuffle::{shuffle_records, MPI_COUNT_LIMIT};
use dcnn_core::dimd::{decode_image, encode_image, SynthConfig, SynthImageNet};
use dcnn_core::dpt::{DptExecutor, DptStrategy};
use dcnn_core::models::resnet::ResNetConfig;
use dcnn_core::simnet::{FatTree, SimOptions};
use dcnn_core::tensor::gemm::gemm;
use dcnn_core::tensor::layers::{Conv2d, Module};
use dcnn_core::tensor::Tensor;

/// Real threaded allreduce across 8 ranks, per algorithm and payload.
fn bench_allreduce_real(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_real_8ranks");
    g.sample_size(10);
    for algo in AllreduceAlgo::all() {
        for kb in [256usize, 4096] {
            let elems = kb * 1024 / 4;
            g.throughput(Throughput::Bytes((kb * 1024) as u64));
            g.bench_with_input(
                BenchmarkId::new(algo.name(), format!("{kb}KiB")),
                &elems,
                |b, &elems| {
                    let a = algo.build();
                    b.iter(|| {
                        let out = run_cluster(8, |comm| {
                            let mut buf = vec![comm.rank() as f32; elems];
                            a.run(comm, &mut buf);
                            buf[0]
                        });
                        black_box(out)
                    });
                },
            );
        }
    }
    g.finish();
}

/// Simulated allreduce schedule construction + fluid simulation (what the
/// figure experiments run many times).
fn bench_allreduce_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_sim_16nodes");
    g.sample_size(10);
    let topo = FatTree::minsky(16);
    let cost = dcnn_core::collectives::CostModel::default();
    for algo in AllreduceAlgo::paper_trio() {
        g.bench_function(algo.name(), |b| {
            let a = algo.build();
            b.iter(|| {
                let s = a.schedule(16, 93e6, &cost);
                black_box(s.simulate(&topo, &SimOptions::default()).makespan)
            });
        });
    }
    g.finish();
}

/// DCT codec encode/decode on a synthetic 64×64 image.
fn bench_codec(c: &mut Criterion) {
    let ds = SynthImageNet::new(SynthConfig {
        classes: 1,
        train_per_class: 1,
        val_per_class: 1,
        base_hw: 64,
        hw_jitter: 0,
        noise: 16.0,
        seed: 7,
    });
    let img = ds.train_image(0);
    let enc = encode_image(&img, 60);
    let mut g = c.benchmark_group("codec_64x64");
    g.throughput(Throughput::Bytes(img.data.len() as u64));
    g.bench_function("encode_q60", |b| b.iter(|| black_box(encode_image(&img, 60))));
    g.bench_function("decode", |b| b.iter(|| black_box(decode_image(&enc))));
    g.finish();
}

/// GEMM and convolution kernels.
fn bench_tensor_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor_kernels");
    let n = 128;
    let a = Tensor::randn(&[n, n], 1.0, 1);
    let bm = Tensor::randn(&[n, n], 1.0, 2);
    let mut out = vec![0.0f32; n * n];
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("gemm_128", |b| {
        b.iter(|| {
            gemm(&mut out, a.data(), bm.data(), n, n, n);
            black_box(out[0])
        })
    });
    g.finish();

    let mut g = c.benchmark_group("conv2d");
    g.sample_size(20);
    let x = Tensor::randn(&[4, 16, 32, 32], 1.0, 3);
    g.bench_function("fwd_bwd_16x32_3x3", |b| {
        let mut conv = Conv2d::new(16, 32, 3, 1, 1, false, 5);
        b.iter(|| {
            let y = conv.forward(&x, true);
            black_box(conv.backward(&y))
        })
    });
    g.finish();
}

/// The real distributed shuffle (Algorithm 2) across 4 ranks.
fn bench_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("dimd_shuffle_4ranks");
    g.sample_size(10);
    g.bench_function("1000x1KB_records", |b| {
        b.iter(|| {
            let out = run_cluster(4, |comm| {
                let records: Vec<(Vec<u8>, u32)> =
                    (0..1000).map(|i| (vec![i as u8; 1024], i as u32)).collect();
                shuffle_records(comm, records, 3, MPI_COUNT_LIMIT).len()
            });
            black_box(out)
        })
    });
    g.finish();
}

/// Both data-parallel-table executors on the same node batch.
fn bench_dpt(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpt_step_4gpus");
    g.sample_size(10);
    let factory = || {
        ResNetConfig {
            blocks: vec![1],
            base_width: 8,
            bottleneck: false,
            classes: 8,
            input: [3, 32, 32],
            imagenet_stem: false,
        }
        .build(3)
    };
    let x = Tensor::randn(&[16, 3, 32, 32], 1.0, 9);
    let labels: Vec<usize> = (0..16).map(|i| i % 8).collect();
    for (name, strategy) in
        [("baseline", DptStrategy::Baseline), ("optimized", DptStrategy::Optimized)]
    {
        g.bench_function(name, |b| {
            let mut exec = DptExecutor::new(4, factory);
            b.iter(|| black_box(exec.step(&x, &labels, strategy).loss));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_allreduce_real,
    bench_allreduce_sim,
    bench_codec,
    bench_tensor_kernels,
    bench_shuffle,
    bench_dpt
);
criterion_main!(benches);
