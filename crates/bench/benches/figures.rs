//! `cargo bench --bench figures` — the regeneration harness: runs every
//! table/figure experiment once (quick accuracy scale) and prints the rows
//! the paper reports. Uses a plain `main` (no criterion) because each
//! experiment is a one-shot simulation, not a microbenchmark.

use dcnn_bench::{render, ALL_EXPERIMENTS};
use dcnn_core::experiments::AccuracyScale;

fn main() {
    // `cargo bench` passes `--bench`; ignore all flags.
    let scale = AccuracyScale::quick();
    println!("# dist-cnn figure/table regeneration (quick accuracy scale)\n");
    for name in ALL_EXPERIMENTS {
        let t0 = std::time::Instant::now();
        println!("{}", render(name, &scale));
        println!("_generated in {:.1}s_\n", t0.elapsed().as_secs_f64());
    }
}
