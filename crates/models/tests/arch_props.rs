//! Property tests of the architecture interpreter: for randomly generated
//! specs, the built module and the analytic census must agree on parameter
//! counts, and the module must run forward/backward at the predicted shapes.

use dcnn_models::arch::Arch;
use dcnn_tensor::layers::param_count;
use dcnn_tensor::Tensor;
use proptest::prelude::*;

/// A random sequential trunk that keeps spatial dims valid.
fn arb_trunk() -> impl Strategy<Value = Vec<Arch>> {
    let layer = prop_oneof![
        (1usize..=8, 1usize..=2).prop_map(|(c, s)| Arch::Conv {
            out_c: c,
            kernel: 3,
            stride: s,
            pad: 1,
            bias: false,
        }),
        (1usize..=8).prop_map(|c| Arch::Conv { out_c: c, kernel: 1, stride: 1, pad: 0, bias: true }),
        Just(Arch::Bn),
        Just(Arch::Relu),
        Just(Arch::MaxPool { kernel: 2, stride: 2, pad: 0 }),
        Just(Arch::AvgPool { kernel: 3, stride: 1, pad: 1 }),
    ];
    prop::collection::vec(layer, 1..6)
}

fn spatial_shrink(nodes: &[Arch]) -> usize {
    // Product of the stride factors, to keep inputs large enough.
    nodes
        .iter()
        .map(|n| match n {
            Arch::Conv { stride, .. } => *stride,
            Arch::MaxPool { stride, .. } => *stride,
            _ => 1,
        })
        .product()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn build_and_census_always_agree(trunk in arb_trunk(), classes in 2usize..6) {
        prop_assume!(spatial_shrink(&trunk) <= 8);
        let mut nodes = trunk;
        nodes.push(Arch::Gap);
        nodes.push(Arch::Fc { out: classes });
        let arch = Arch::Seq(nodes);
        let input = [2usize, 16, 16];
        let mut shape = input;
        let mut seed = 1u64;
        let mut m = arch.build(&mut shape, &mut seed);
        let census = arch.census("prop", input, classes);
        prop_assert_eq!(param_count(m.as_mut()), census.param_count());
        prop_assert_eq!(shape, [classes, 1, 1]);

        // The census' final activation count is the class count.
        let last = census.layers.last().expect("layers");
        prop_assert_eq!(last.activation, classes);

        // And the module actually runs at those shapes.
        let x = Tensor::randn(&[2, 2, 16, 16], 1.0, 3);
        let y = m.forward(&x, true);
        prop_assert_eq!(y.shape(), &[2, classes]);
        let dx = m.backward(&y);
        prop_assert_eq!(dx.shape(), x.shape());
        prop_assert!(dx.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn census_flops_nonnegative_and_bwd_heavier(trunk in arb_trunk()) {
        prop_assume!(spatial_shrink(&trunk) <= 8);
        let arch = Arch::Seq(trunk);
        let census = arch.census("prop", [2, 16, 16], 0);
        for l in &census.layers {
            prop_assert!(l.fwd_flops >= 0.0);
            // Pooling is the exception: forward scans the window, backward
            // scatters one value per output.
            if l.kind != dcnn_models::LayerKind::Pool {
                prop_assert!(l.bwd_flops >= l.fwd_flops * 0.99,
                    "{}: bwd {} < fwd {}", l.name, l.bwd_flops, l.fwd_flops);
            }
        }
    }
}
