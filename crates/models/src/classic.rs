//! AlexNet and VGG-16 — the networks the paper's introduction motivates
//! ("the image classification challenge has resulted in the development of
//! several deep neural networks such as AlexNet, GoogleNet, VGG, Resnet…")
//! and the workload of You et al.'s AlexNet record cited in §5.5. Provided
//! as census sources for what-if projections with the epoch-time model; the
//! `Arch` spec builds them as trainable modules too.
//!
//! Simplifications: AlexNet's local response normalization is omitted (it is
//! cost-negligible and accuracy-irrelevant at census level) and dropout is
//! an identity for cost purposes.

use crate::arch::Arch;
use crate::census::ModelCensus;

/// AlexNet (single-tower variant, as commonly reimplemented).
pub fn alexnet_arch(classes: usize) -> Arch {
    Arch::Seq(vec![
        Arch::Conv { out_c: 64, kernel: 11, stride: 4, pad: 2, bias: true },
        Arch::Relu,
        Arch::MaxPool { kernel: 3, stride: 2, pad: 0 },
        Arch::Conv { out_c: 192, kernel: 5, stride: 1, pad: 2, bias: true },
        Arch::Relu,
        Arch::MaxPool { kernel: 3, stride: 2, pad: 0 },
        Arch::Conv { out_c: 384, kernel: 3, stride: 1, pad: 1, bias: true },
        Arch::Relu,
        Arch::Conv { out_c: 256, kernel: 3, stride: 1, pad: 1, bias: true },
        Arch::Relu,
        Arch::Conv { out_c: 256, kernel: 3, stride: 1, pad: 1, bias: true },
        Arch::Relu,
        Arch::MaxPool { kernel: 3, stride: 2, pad: 0 },
        Arch::Flatten,
        Arch::Fc { out: 4096 },
        Arch::Relu,
        Arch::Fc { out: 4096 },
        Arch::Relu,
        Arch::Fc { out: classes },
    ])
}

/// AlexNet census at 224×224 (the 227 vs 224 input convention differs by one
/// border pixel; 224 with pad 2 gives the canonical 55→27→13→6 feature maps).
pub fn alexnet() -> ModelCensus {
    alexnet_arch(1000).census("alexnet", [3, 224, 224], 1000)
}

/// VGG-16 (configuration D).
pub fn vgg16_arch(classes: usize) -> Arch {
    let mut nodes = Vec::new();
    let push_block = |convs: usize, out_c: usize, nodes: &mut Vec<Arch>| {
        for _ in 0..convs {
            nodes.push(Arch::Conv { out_c, kernel: 3, stride: 1, pad: 1, bias: true });
            nodes.push(Arch::Relu);
        }
        nodes.push(Arch::MaxPool { kernel: 2, stride: 2, pad: 0 });
    };
    push_block(2, 64, &mut nodes);
    push_block(2, 128, &mut nodes);
    push_block(3, 256, &mut nodes);
    push_block(3, 512, &mut nodes);
    push_block(3, 512, &mut nodes);
    nodes.push(Arch::Flatten);
    nodes.push(Arch::Fc { out: 4096 });
    nodes.push(Arch::Relu);
    nodes.push(Arch::Fc { out: 4096 });
    nodes.push(Arch::Relu);
    nodes.push(Arch::Fc { out: classes });
    Arch::Seq(nodes)
}

/// VGG-16 census at 224×224.
pub fn vgg16() -> ModelCensus {
    vgg16_arch(1000).census("vgg16", [3, 224, 224], 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_tensor::layers::param_count;
    use dcnn_tensor::Tensor;

    #[test]
    fn alexnet_parameter_count() {
        // Canonical single-tower AlexNet: ~61M parameters.
        let p = alexnet().param_count();
        assert!((57_000_000..=63_000_000).contains(&p), "AlexNet params {p}");
    }

    #[test]
    fn vgg16_parameter_count() {
        // Canonical VGG-16: 138.36M parameters.
        let p = vgg16().param_count();
        assert!((137_000_000..=140_000_000).contains(&p), "VGG-16 params {p}");
    }

    #[test]
    fn vgg16_flops() {
        // VGG-16 forward ≈ 15.5 GMACs = 31 GFLOPs at 224².
        let gf = vgg16().fwd_flops(1) / 1e9;
        assert!((29.0..=33.0).contains(&gf), "VGG-16 fwd {gf} GFLOPs");
    }

    #[test]
    fn alexnet_feature_map_progression() {
        // Conv stack output before the classifier is 256×6×6 = 9216.
        let c = alexnet();
        let fc1 = c.layers.iter().find(|l| l.name.contains("fc/4096")).expect("fc");
        assert_eq!(fc1.params, 9216 * 4096 + 4096);
    }

    #[test]
    fn tiny_alexnet_builds_and_backprops() {
        // The same arch scaled to a small input still trains.
        let arch = Arch::Seq(vec![
            Arch::Conv { out_c: 8, kernel: 3, stride: 1, pad: 1, bias: true },
            Arch::Relu,
            Arch::MaxPool { kernel: 2, stride: 2, pad: 0 },
            Arch::Flatten,
            Arch::Fc { out: 16 },
            Arch::Relu,
            Arch::Fc { out: 5 },
        ]);
        let mut shape = [3usize, 16, 16];
        let mut seed = 0;
        let mut m = arch.build(&mut shape, &mut seed);
        assert_eq!(shape, [5, 1, 1]);
        let census = arch.census("tiny-alex", [3, 16, 16], 5);
        assert_eq!(param_count(m.as_mut()), census.param_count());
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, 3);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, 5]);
        let dx = m.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn vgg_slowest_on_p100_model() {
        // Sanity for what-if projections: VGG-16's throughput on the P100
        // model is far below ResNet-50's (as in practice).
        let dev = dcnn_gpusim_stub::p100();
        let v = dev.train_throughput(&vgg16(), 32);
        let r = dev.train_throughput(&crate::resnet50(), 32);
        assert!(v < r, "VGG {v} img/s should be slower than ResNet {r}");
    }

    /// Minimal local copy of the P100 roofline to avoid a dependency cycle
    /// (gpusim depends on models).
    mod dcnn_gpusim_stub {
        use crate::census::{LayerKind, ModelCensus};

        pub struct Dev;

        pub fn p100() -> Dev {
            Dev
        }

        impl Dev {
            pub fn train_throughput(&self, census: &ModelCensus, n: usize) -> f64 {
                let secs: f64 = census
                    .layers
                    .iter()
                    .map(|l| {
                        let flops = (l.fwd_flops + l.bwd_flops) * n as f64;
                        let eff = match l.kind {
                            LayerKind::Conv => 0.5,
                            LayerKind::Gemm => 0.65,
                            _ => 1.0,
                        };
                        (flops / (10.6e12 * eff))
                            .max(l.bytes_touched * n as f64 * 3.0 / 732e9)
                    })
                    .sum();
                n as f64 / secs
            }
        }
    }
}
