#![warn(missing_docs)]

//! # dcnn-models — the paper's two workloads
//!
//! Builders for the networks evaluated in *Kumar et al. (CLUSTER 2018)*:
//! **ResNet-50** (He et al., via the fb.resnet.torch package the paper cites
//! as \[34\]) and **batch-normalized GoogLeNet** (Ioffe & Szegedy's
//! BN-Inception, cited as \[33\]).
//!
//! Each architecture is written once as an [`arch::Arch`] specification and
//! interpreted twice:
//!
//! * [`arch::Arch::build`] — a real, trainable [`dcnn_tensor::Module`]
//!   (used by the accuracy experiments, Figures 13–16, at scaled-down size);
//! * [`arch::Arch::census`] — an analytic per-layer cost model
//!   ([`census::ModelCensus`]: parameters, forward/backward FLOPs, activation
//!   and gradient bytes) consumed by `dcnn-gpusim` to time one training
//!   iteration on the simulated P100s at the paper's full scale.
//!
//! Having a single source of truth guarantees the timing model and the
//! trainable model never drift apart structurally.

pub mod arch;
pub mod census;
pub mod classic;
pub mod googlenet;
pub mod resnet;

pub use arch::Arch;
pub use census::{LayerCost, LayerKind, ModelCensus};
pub use classic::{alexnet, vgg16};
pub use googlenet::{googlenet_bn, googlenet_bn_tiny};
pub use resnet::{resnet50, resnet_tiny};
