//! ResNet builders (He et al. 2015), following fb.resnet.torch — the paper's
//! ResNet-50 package (\[34\]).

use crate::arch::Arch;
use crate::census::ModelCensus;
use dcnn_tensor::layers::Module;

/// Configuration of a ResNet.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Blocks per stage.
    pub blocks: Vec<usize>,
    /// Width of the first stage (64 for ImageNet ResNets).
    pub base_width: usize,
    /// Bottleneck (1-3-1) blocks if true, basic (3-3) blocks otherwise.
    pub bottleneck: bool,
    /// Class count.
    pub classes: usize,
    /// Input `[C, H, W]`.
    pub input: [usize; 3],
    /// ImageNet-style stem (7×7/s2 + maxpool) vs CIFAR-style 3×3 stem.
    pub imagenet_stem: bool,
}

impl ResNetConfig {
    /// ResNet-50 on 224×224 ImageNet inputs.
    pub fn resnet50(classes: usize) -> Self {
        ResNetConfig {
            blocks: vec![3, 4, 6, 3],
            base_width: 64,
            bottleneck: true,
            classes,
            input: [3, 224, 224],
            imagenet_stem: true,
        }
    }

    /// A small basic-block ResNet for 32×32 synthetic images — the scaled
    /// stand-in used to run the accuracy experiments (Figures 13, 15) for
    /// real on CPU.
    pub fn tiny(classes: usize) -> Self {
        ResNetConfig {
            blocks: vec![1, 1, 1],
            base_width: 8,
            bottleneck: false,
            classes,
            input: [3, 32, 32],
            imagenet_stem: false,
        }
    }

    /// The architecture specification.
    pub fn arch(&self) -> Arch {
        let expansion = if self.bottleneck { 4 } else { 1 };
        let mut nodes = Vec::new();
        if self.imagenet_stem {
            nodes.push(Arch::conv_bn_relu(self.base_width, 7, 2, 3));
            nodes.push(Arch::MaxPool { kernel: 3, stride: 2, pad: 1 });
        } else {
            nodes.push(Arch::conv_bn_relu(self.base_width, 3, 1, 1));
        }
        let mut in_c = self.base_width;
        for (stage, &n_blocks) in self.blocks.iter().enumerate() {
            let width = self.base_width << stage;
            let out_c = width * expansion;
            for b in 0..n_blocks {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                let main = if self.bottleneck {
                    Arch::Seq(vec![
                        Arch::conv_bn_relu(width, 1, 1, 0),
                        Arch::conv_bn_relu(width, 3, stride, 1),
                        Arch::Conv { out_c, kernel: 1, stride: 1, pad: 0, bias: false },
                        Arch::Bn,
                    ])
                } else {
                    Arch::Seq(vec![
                        Arch::conv_bn_relu(width, 3, stride, 1),
                        Arch::Conv { out_c, kernel: 3, stride: 1, pad: 1, bias: false },
                        Arch::Bn,
                    ])
                };
                let needs_projection = stride != 1 || in_c != out_c;
                let shortcut = needs_projection.then(|| {
                    Box::new(Arch::Seq(vec![
                        Arch::Conv { out_c, kernel: 1, stride, pad: 0, bias: false },
                        Arch::Bn,
                    ]))
                });
                nodes.push(Arch::ResidualBlock { main: Box::new(main), shortcut });
                in_c = out_c;
            }
        }
        nodes.push(Arch::Gap);
        nodes.push(Arch::Fc { out: self.classes });
        Arch::Seq(nodes)
    }

    /// Build the trainable module (deterministic for a given seed).
    pub fn build(&self, seed: u64) -> Box<dyn Module> {
        let mut shape = self.input;
        let mut s = seed;
        let m = self.arch().build(&mut shape, &mut s);
        assert_eq!(shape, [self.classes, 1, 1]);
        m
    }

    /// Analytic cost census.
    pub fn census(&self, name: &str) -> ModelCensus {
        self.arch().census(name, self.input, self.classes)
    }
}

/// The paper's ResNet-50 census (1000 classes, 224×224).
pub fn resnet50() -> ModelCensus {
    ResNetConfig::resnet50(1000).census("resnet50")
}

/// Build the tiny trainable ResNet and its census.
pub fn resnet_tiny(classes: usize, seed: u64) -> (Box<dyn Module>, ModelCensus) {
    let cfg = ResNetConfig::tiny(classes);
    (cfg.build(seed), cfg.census("resnet-tiny"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_tensor::layers::param_count;
    use dcnn_tensor::Tensor;

    #[test]
    fn resnet50_parameter_count_matches_paper_model() {
        let c = resnet50();
        let p = c.param_count();
        // Canonical ResNet-50 (1000 classes): 25,557,032 parameters.
        assert!(
            (25_400_000..=25_700_000).contains(&p),
            "ResNet-50 params {p}, expected ≈25.56M"
        );
        // Gradient payload ≈ 102 MB.
        let mb = c.payload_bytes() / 1e6;
        assert!((101.0..=103.0).contains(&mb), "payload {mb} MB");
    }

    #[test]
    fn resnet50_flops_match_canonical() {
        // Canonical ResNet-50 forward cost ≈ 4.1 GMACs = 8.2 GFLOPs @224².
        let c = resnet50();
        let gf = c.fwd_flops(1) / 1e9;
        assert!((7.6..=8.8).contains(&gf), "forward {gf} GFLOPs");
    }

    #[test]
    fn resnet50_layer_count() {
        let c = resnet50();
        // 53 convolutions + 53 BNs appear among the layers.
        let convs = c.layers.iter().filter(|l| l.name.contains("conv")).count();
        assert_eq!(convs, 49 + 4 + 1 - 1, "conv count {convs}"); // 53 convs
    }

    #[test]
    fn tiny_builds_and_trains_one_step() {
        let (mut m, census) = resnet_tiny(10, 1);
        assert_eq!(param_count(m.as_mut()), census.param_count());
        let x = Tensor::randn(&[2, 3, 32, 32], 1.0, 5);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = m.backward(&y);
        assert_eq!(dx.shape(), x.shape());
        // Gradients flowed to the stem.
        let g = dcnn_tensor::layers::collect_grads(m.as_mut());
        assert!(g.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn build_census_param_agreement_resnet50_scaledown() {
        // A mid-size config exercises bottlenecks + projections.
        let cfg = ResNetConfig {
            blocks: vec![2, 2],
            base_width: 16,
            bottleneck: true,
            classes: 10,
            input: [3, 32, 32],
            imagenet_stem: false,
        };
        let mut m = cfg.build(0);
        assert_eq!(param_count(m.as_mut()), cfg.census("x").param_count());
    }

    #[test]
    fn stage_downsampling_halves_spatial() {
        let cfg = ResNetConfig::resnet50(1000);
        let c = cfg.census("r50");
        // Final pre-GAP activation is 2048×7×7.
        let gap_idx = c.layers.iter().position(|l| l.name.contains("gap")).expect("gap");
        assert_eq!(c.layers[gap_idx].activation, 2048);
    }
}
