//! Batch-normalized GoogLeNet (BN-Inception, Ioffe & Szegedy 2015) — the
//! paper's "GoogleNetBN" workload (\[33\]).
//!
//! Channel configuration follows the BN-Inception table: ten inception
//! modules in three stages, with the 3c and 4e modules performing stride-2
//! downsampling via their conv branches plus a pass-through max pool.

use crate::arch::Arch;
use crate::census::ModelCensus;
use dcnn_tensor::layers::Module;

/// One inception module's channel plan.
///
/// * `c1` — 1×1 branch (0 = branch absent, as in the downsampling modules)
/// * `c3r`, `c3` — 1×1 reduce then 3×3
/// * `d3r`, `d3` — 1×1 reduce then double 3×3
/// * `pool_proj` — 1×1 after the pooling branch (0 = pass-through max pool)
/// * `stride` — 1, or 2 for the downsampling modules
#[derive(Debug, Clone, Copy)]
struct Inc {
    c1: usize,
    c3r: usize,
    c3: usize,
    d3r: usize,
    d3: usize,
    pool_proj: usize,
    stride: usize,
    avg_pool: bool,
}

fn inception(p: Inc) -> Arch {
    let mut branches = Vec::new();
    if p.c1 > 0 {
        branches.push(Arch::conv_bn_relu(p.c1, 1, 1, 0));
    }
    branches.push(Arch::Seq(vec![
        Arch::conv_bn_relu(p.c3r, 1, 1, 0),
        Arch::conv_bn_relu(p.c3, 3, p.stride, 1),
    ]));
    branches.push(Arch::Seq(vec![
        Arch::conv_bn_relu(p.d3r, 1, 1, 0),
        Arch::conv_bn_relu(p.d3, 3, 1, 1),
        Arch::conv_bn_relu(p.d3, 3, p.stride, 1),
    ]));
    let pool = if p.avg_pool {
        Arch::AvgPool { kernel: 3, stride: p.stride, pad: 1 }
    } else {
        Arch::MaxPool { kernel: 3, stride: p.stride, pad: 1 }
    };
    if p.pool_proj > 0 {
        branches.push(Arch::Seq(vec![pool, Arch::conv_bn_relu(p.pool_proj, 1, 1, 0)]));
    } else {
        branches.push(pool);
    }
    Arch::Inception(branches)
}

/// Configuration for a (possibly scaled) GoogLeNet-BN.
#[derive(Debug, Clone)]
pub struct GoogLeNetConfig {
    /// Class count.
    pub classes: usize,
    /// Input `[C, H, W]`.
    pub input: [usize; 3],
    /// Divide every channel count by this factor (1 = the paper's model).
    pub width_divisor: usize,
    /// Keep the full 10-module trunk, or a 4-module tiny trunk.
    pub full_trunk: bool,
}

impl GoogLeNetConfig {
    /// The paper's GoogLeNet-BN at full size.
    pub fn paper(classes: usize) -> Self {
        GoogLeNetConfig { classes, input: [3, 224, 224], width_divisor: 1, full_trunk: true }
    }

    /// Scaled-down variant for real CPU training on 32×32 synthetic images.
    pub fn tiny(classes: usize) -> Self {
        GoogLeNetConfig { classes, input: [3, 32, 32], width_divisor: 8, full_trunk: false }
    }

    fn d(&self, c: usize) -> usize {
        (c / self.width_divisor).max(1)
    }

    /// The architecture specification.
    pub fn arch(&self) -> Arch {
        let d = |c| self.d(c);
        let mut nodes = Vec::new();
        if self.full_trunk {
            // Stem: 7×7/s2 → pool → 1×1 → 3×3 → pool.
            nodes.push(Arch::conv_bn_relu(d(64), 7, 2, 3));
            nodes.push(Arch::MaxPool { kernel: 3, stride: 2, pad: 1 });
            nodes.push(Arch::conv_bn_relu(d(64), 1, 1, 0));
            nodes.push(Arch::conv_bn_relu(d(192), 3, 1, 1));
            nodes.push(Arch::MaxPool { kernel: 3, stride: 2, pad: 1 });
        } else {
            nodes.push(Arch::conv_bn_relu(d(192), 3, 1, 1));
        }
        let modules: Vec<Inc> = if self.full_trunk {
            vec![
                // 3a, 3b, 3c(↓)
                Inc { c1: d(64), c3r: d(64), c3: d(64), d3r: d(64), d3: d(96), pool_proj: d(32), stride: 1, avg_pool: true },
                Inc { c1: d(64), c3r: d(64), c3: d(96), d3r: d(64), d3: d(96), pool_proj: d(64), stride: 1, avg_pool: true },
                Inc { c1: 0, c3r: d(128), c3: d(160), d3r: d(64), d3: d(96), pool_proj: 0, stride: 2, avg_pool: false },
                // 4a–4d, 4e(↓)
                Inc { c1: d(224), c3r: d(64), c3: d(96), d3r: d(96), d3: d(128), pool_proj: d(128), stride: 1, avg_pool: true },
                Inc { c1: d(192), c3r: d(96), c3: d(128), d3r: d(96), d3: d(128), pool_proj: d(128), stride: 1, avg_pool: true },
                Inc { c1: d(160), c3r: d(128), c3: d(160), d3r: d(128), d3: d(160), pool_proj: d(128), stride: 1, avg_pool: true },
                Inc { c1: d(96), c3r: d(128), c3: d(192), d3r: d(160), d3: d(192), pool_proj: d(128), stride: 1, avg_pool: true },
                Inc { c1: 0, c3r: d(128), c3: d(192), d3r: d(192), d3: d(256), pool_proj: 0, stride: 2, avg_pool: false },
                // 5a, 5b
                Inc { c1: d(352), c3r: d(192), c3: d(320), d3r: d(160), d3: d(224), pool_proj: d(128), stride: 1, avg_pool: true },
                Inc { c1: d(352), c3r: d(192), c3: d(320), d3r: d(192), d3: d(224), pool_proj: d(128), stride: 1, avg_pool: false },
            ]
        } else {
            vec![
                Inc { c1: d(64), c3r: d(64), c3: d(64), d3r: d(64), d3: d(96), pool_proj: d(32), stride: 1, avg_pool: true },
                Inc { c1: d(64), c3r: d(64), c3: d(96), d3r: d(64), d3: d(96), pool_proj: d(64), stride: 1, avg_pool: true },
                Inc { c1: 0, c3r: d(128), c3: d(160), d3r: d(64), d3: d(96), pool_proj: 0, stride: 2, avg_pool: false },
                Inc { c1: d(224), c3r: d(64), c3: d(96), d3r: d(96), d3: d(128), pool_proj: d(128), stride: 1, avg_pool: true },
            ]
        };
        for m in modules {
            nodes.push(inception(m));
        }
        nodes.push(Arch::Gap);
        nodes.push(Arch::Fc { out: self.classes });
        Arch::Seq(nodes)
    }

    /// Build the trainable module.
    pub fn build(&self, seed: u64) -> Box<dyn Module> {
        let mut shape = self.input;
        let mut s = seed;
        let m = self.arch().build(&mut shape, &mut s);
        assert_eq!(shape[0], self.classes);
        m
    }

    /// Analytic cost census.
    pub fn census(&self, name: &str) -> ModelCensus {
        self.arch().census(name, self.input, self.classes)
    }
}

/// The paper's GoogLeNet-BN census (1000 classes, 224×224).
pub fn googlenet_bn() -> ModelCensus {
    GoogLeNetConfig::paper(1000).census("googlenet-bn")
}

/// Build the tiny trainable GoogLeNet-BN and its census.
pub fn googlenet_bn_tiny(classes: usize, seed: u64) -> (Box<dyn Module>, ModelCensus) {
    let cfg = GoogLeNetConfig::tiny(classes);
    (cfg.build(seed), cfg.census("googlenet-bn-tiny"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_tensor::layers::param_count;
    use dcnn_tensor::Tensor;

    #[test]
    fn paper_model_parameter_count() {
        let c = googlenet_bn();
        let p = c.param_count();
        // BN-Inception with a 1000-class head is ≈ 11.3M parameters.
        assert!(
            (10_000_000..=13_000_000).contains(&p),
            "GoogLeNet-BN params {p}, expected ≈11M"
        );
    }

    #[test]
    fn forward_flops_match_canonical() {
        let c = googlenet_bn();
        let gf = c.fwd_flops(1) / 1e9;
        // BN-Inception ≈ 2 GMACs = 4 GFLOPs forward at 224².
        assert!((3.4..=4.8).contains(&gf), "forward {gf} GFLOPs");
    }

    #[test]
    fn trunk_output_channels() {
        // After 5b the trunk is 1024 channels at 7×7.
        let c = googlenet_bn();
        let gap = c.layers.iter().find(|l| l.name.contains("gap")).expect("gap");
        assert_eq!(gap.activation, 1024);
    }

    #[test]
    fn downsampling_module_shapes() {
        // Spatial resolution goes 224 → 56 (stem) → 28 (3c) → 14 (4e) → 7.
        let cfg = GoogLeNetConfig::paper(1000);
        let mut shape = cfg.input;
        let mut layers = Vec::new();
        cfg.arch().census_into(&mut shape, "", &mut layers);
        assert_eq!(shape, [1000, 1, 1]);
    }

    #[test]
    fn tiny_builds_and_backprops() {
        let (mut m, census) = googlenet_bn_tiny(10, 2);
        assert_eq!(param_count(m.as_mut()), census.param_count());
        let x = Tensor::randn(&[2, 3, 32, 32], 1.0, 3);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = m.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn build_census_param_agreement_full_graph() {
        // Full trunk at divisor 4 keeps the test fast but covers all module
        // variants including pass-through pools.
        let cfg = GoogLeNetConfig {
            classes: 17,
            input: [3, 64, 64],
            width_divisor: 4,
            full_trunk: true,
        };
        let mut m = cfg.build(0);
        assert_eq!(param_count(m.as_mut()), cfg.census("g").param_count());
    }
}
