//! Architecture specifications interpreted as modules or as cost censuses.

use dcnn_tensor::layers::{
    AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, Module, ReLU,
};
use dcnn_tensor::nn::{Concat, Residual, Sequential};

use crate::census::{LayerCost, LayerKind, ModelCensus};

/// A declarative network description. `[C, H, W]` shapes flow through it.
#[derive(Debug, Clone)]
pub enum Arch {
    /// Convolution (square kernel). `bias` is false when a BN follows.
    Conv {
        /// Output channels.
        out_c: usize,
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Include a bias term.
        bias: bool,
    },
    /// Batch normalization over the current channel count.
    Bn,
    /// ReLU activation.
    Relu,
    /// Max pooling.
    MaxPool {
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Global average pooling to `[C]`.
    Gap,
    /// Flatten `[C, H, W]` → `[C·H·W]` (AlexNet/VGG classifier heads).
    Flatten,
    /// Fully connected classifier (input must be post-GAP or post-Flatten).
    Fc {
        /// Output features (class count).
        out: usize,
    },
    /// Sub-networks in sequence.
    Seq(Vec<Arch>),
    /// `ReLU(main(x) + shortcut(x))`; `None` shortcut = identity.
    ResidualBlock {
        /// Main path.
        main: Box<Arch>,
        /// Projection shortcut, if the main path changes shape.
        shortcut: Option<Box<Arch>>,
    },
    /// Parallel branches concatenated along channels (inception module).
    Inception(Vec<Arch>),
}

impl Arch {
    /// Build a trainable module. `shape` is `[C, H, W]` on input and is
    /// updated to the output shape; `seed` provides deterministic per-layer
    /// initialization seeds (incremented per parameterized layer).
    pub fn build(&self, shape: &mut [usize; 3], seed: &mut u64) -> Box<dyn Module> {
        match self {
            Arch::Conv { out_c, kernel, stride, pad, bias } => {
                let conv = Conv2d::new(shape[0], *out_c, *kernel, *stride, *pad, *bias, *seed);
                *seed += 1;
                shape[0] = *out_c;
                shape[1] = dcnn_tensor::im2col::out_dim(shape[1], *kernel, *stride, *pad);
                shape[2] = dcnn_tensor::im2col::out_dim(shape[2], *kernel, *stride, *pad);
                Box::new(conv)
            }
            Arch::Bn => Box::new(BatchNorm2d::new(shape[0])),
            Arch::Relu => Box::new(ReLU::new()),
            Arch::MaxPool { kernel, stride, pad } => {
                shape[1] = dcnn_tensor::im2col::out_dim(shape[1], *kernel, *stride, *pad);
                shape[2] = dcnn_tensor::im2col::out_dim(shape[2], *kernel, *stride, *pad);
                Box::new(MaxPool2d::new(*kernel, *stride, *pad))
            }
            Arch::AvgPool { kernel, stride, pad } => {
                shape[1] = dcnn_tensor::im2col::out_dim(shape[1], *kernel, *stride, *pad);
                shape[2] = dcnn_tensor::im2col::out_dim(shape[2], *kernel, *stride, *pad);
                Box::new(AvgPool2d::new(*kernel, *stride, *pad))
            }
            Arch::Gap => {
                shape[1] = 1;
                shape[2] = 1;
                Box::new(GlobalAvgPool::new())
            }
            Arch::Flatten => {
                shape[0] *= shape[1] * shape[2];
                shape[1] = 1;
                shape[2] = 1;
                Box::new(dcnn_tensor::layers::Flatten::new())
            }
            Arch::Fc { out } => {
                assert_eq!(shape[1] * shape[2], 1, "Fc expects post-GAP input");
                let fc = Linear::new(shape[0], *out, *seed);
                *seed += 1;
                shape[0] = *out;
                Box::new(fc)
            }
            Arch::Seq(nodes) => {
                let mut s = Sequential::new();
                for n in nodes {
                    s = s.push_boxed(n.build(shape, seed));
                }
                Box::new(s)
            }
            Arch::ResidualBlock { main, shortcut } => {
                let in_shape = *shape;
                let main_mod = Sequential::new().push_boxed(main.build(shape, seed));
                let out_shape = *shape;
                match shortcut {
                    None => {
                        assert_eq!(in_shape, out_shape, "identity shortcut needs same shape");
                        Box::new(Residual::new(main_mod))
                    }
                    Some(sc) => {
                        let mut sc_shape = in_shape;
                        let sc_mod = Sequential::new().push_boxed(sc.build(&mut sc_shape, seed));
                        assert_eq!(sc_shape, out_shape, "shortcut output shape mismatch");
                        Box::new(Residual::with_shortcut(main_mod, sc_mod))
                    }
                }
            }
            Arch::Inception(branches) => {
                let in_shape = *shape;
                let mut outs = Vec::with_capacity(branches.len());
                let mut built = Vec::with_capacity(branches.len());
                for b in branches {
                    let mut bs = in_shape;
                    built.push(Sequential::new().push_boxed(b.build(&mut bs, seed)));
                    outs.push(bs);
                }
                for o in &outs {
                    assert_eq!(o[1], outs[0][1], "inception branch heights must match");
                    assert_eq!(o[2], outs[0][2], "inception branch widths must match");
                }
                shape[0] = outs.iter().map(|o| o[0]).sum();
                shape[1] = outs[0][1];
                shape[2] = outs[0][2];
                Box::new(Concat::new(built))
            }
        }
    }

    /// Append this node's layer costs; mirrors [`Arch::build`]'s shape flow.
    pub fn census_into(&self, shape: &mut [usize; 3], prefix: &str, out: &mut Vec<LayerCost>) {
        let elems = |s: &[usize; 3]| s[0] * s[1] * s[2];
        match self {
            Arch::Conv { out_c, kernel, stride, pad, bias } => {
                let in_c = shape[0];
                let oh = dcnn_tensor::im2col::out_dim(shape[1], *kernel, *stride, *pad);
                let ow = dcnn_tensor::im2col::out_dim(shape[2], *kernel, *stride, *pad);
                let params = out_c * in_c * kernel * kernel + if *bias { *out_c } else { 0 };
                let fwd = 2.0 * (kernel * kernel * in_c * out_c) as f64 * (oh * ow) as f64;
                let act = out_c * oh * ow;
                out.push(LayerCost {
                    name: format!("{prefix}conv{kernel}x{kernel}/{out_c}"),
                    kind: LayerKind::Conv,
                    params,
                    fwd_flops: fwd,
                    bwd_flops: 2.0 * fwd,
                    bytes_touched: (elems(shape) + act + params) as f64 * 4.0,
                    activation: act,
                });
                shape[0] = *out_c;
                shape[1] = oh;
                shape[2] = ow;
            }
            Arch::Bn => {
                let n = elems(shape) as f64;
                out.push(LayerCost {
                    name: format!("{prefix}bn/{}", shape[0]),
                    kind: LayerKind::Norm,
                    params: 2 * shape[0],
                    fwd_flops: 8.0 * n,
                    bwd_flops: 12.0 * n,
                    bytes_touched: 16.0 * n,
                    activation: elems(shape),
                });
            }
            Arch::Relu => {
                let n = elems(shape) as f64;
                out.push(LayerCost {
                    name: format!("{prefix}relu"),
                    kind: LayerKind::Pointwise,
                    params: 0,
                    fwd_flops: n,
                    bwd_flops: n,
                    bytes_touched: 8.0 * n,
                    activation: elems(shape),
                });
            }
            Arch::MaxPool { kernel, stride, pad } | Arch::AvgPool { kernel, stride, pad } => {
                let oh = dcnn_tensor::im2col::out_dim(shape[1], *kernel, *stride, *pad);
                let ow = dcnn_tensor::im2col::out_dim(shape[2], *kernel, *stride, *pad);
                let act = shape[0] * oh * ow;
                let name = if matches!(self, Arch::MaxPool { .. }) { "maxpool" } else { "avgpool" };
                out.push(LayerCost {
                    name: format!("{prefix}{name}{kernel}x{kernel}"),
                    kind: LayerKind::Pool,
                    params: 0,
                    fwd_flops: (kernel * kernel) as f64 * act as f64,
                    bwd_flops: act as f64,
                    bytes_touched: (elems(shape) + act) as f64 * 4.0,
                    activation: act,
                });
                shape[1] = oh;
                shape[2] = ow;
            }
            Arch::Gap => {
                let n = elems(shape) as f64;
                out.push(LayerCost {
                    name: format!("{prefix}gap"),
                    kind: LayerKind::Pool,
                    params: 0,
                    fwd_flops: n,
                    bwd_flops: n,
                    bytes_touched: 4.0 * n,
                    activation: shape[0],
                });
                shape[1] = 1;
                shape[2] = 1;
            }
            Arch::Flatten => {
                // Pure reshape: free at runtime, no census entry needed.
                shape[0] *= shape[1] * shape[2];
                shape[1] = 1;
                shape[2] = 1;
            }
            Arch::Fc { out: classes } => {
                let in_f = shape[0];
                let fwd = 2.0 * (in_f * classes) as f64;
                out.push(LayerCost {
                    name: format!("{prefix}fc/{classes}"),
                    kind: LayerKind::Gemm,
                    params: in_f * classes + classes,
                    fwd_flops: fwd,
                    bwd_flops: 2.0 * fwd,
                    bytes_touched: (in_f + classes) as f64 * 4.0,
                    activation: *classes,
                });
                shape[0] = *classes;
            }
            Arch::Seq(nodes) => {
                for n in nodes {
                    n.census_into(shape, prefix, out);
                }
            }
            Arch::ResidualBlock { main, shortcut } => {
                let in_shape = *shape;
                main.census_into(shape, &format!("{prefix}res."), out);
                if let Some(sc) = shortcut {
                    let mut sc_shape = in_shape;
                    sc.census_into(&mut sc_shape, &format!("{prefix}res.sc."), out);
                }
                // Elementwise add + ReLU on the block output.
                let n = elems(shape) as f64;
                out.push(LayerCost {
                    name: format!("{prefix}res.add_relu"),
                    kind: LayerKind::Pointwise,
                    params: 0,
                    fwd_flops: 2.0 * n,
                    bwd_flops: 2.0 * n,
                    bytes_touched: 12.0 * n,
                    activation: elems(shape),
                });
            }
            Arch::Inception(branches) => {
                let in_shape = *shape;
                let mut total_c = 0;
                let mut hw = (0, 0);
                for (i, b) in branches.iter().enumerate() {
                    let mut bs = in_shape;
                    b.census_into(&mut bs, &format!("{prefix}b{i}."), out);
                    total_c += bs[0];
                    hw = (bs[1], bs[2]);
                }
                shape[0] = total_c;
                shape[1] = hw.0;
                shape[2] = hw.1;
            }
        }
    }

    /// Produce the complete census for an input of `[c, h, w]`.
    pub fn census(&self, name: &str, input: [usize; 3], classes: usize) -> ModelCensus {
        let mut shape = input;
        let mut layers = Vec::new();
        self.census_into(&mut shape, "", &mut layers);
        ModelCensus { name: name.to_string(), input, classes, layers }
    }

    /// Convenience: conv → BN → ReLU, the unit both paper models are made of.
    pub fn conv_bn_relu(out_c: usize, kernel: usize, stride: usize, pad: usize) -> Arch {
        Arch::Seq(vec![
            Arch::Conv { out_c, kernel, stride, pad, bias: false },
            Arch::Bn,
            Arch::Relu,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcnn_tensor::layers::param_count;
    use dcnn_tensor::Tensor;

    fn toy() -> Arch {
        Arch::Seq(vec![
            Arch::conv_bn_relu(8, 3, 1, 1),
            Arch::MaxPool { kernel: 2, stride: 2, pad: 0 },
            Arch::ResidualBlock {
                main: Box::new(Arch::Seq(vec![
                    Arch::Conv { out_c: 8, kernel: 3, stride: 1, pad: 1, bias: false },
                    Arch::Bn,
                ])),
                shortcut: None,
            },
            Arch::Gap,
            Arch::Fc { out: 10 },
        ])
    }

    #[test]
    fn build_and_census_agree_on_params() {
        let arch = toy();
        let mut shape = [3usize, 16, 16];
        let mut seed = 0u64;
        let mut m = arch.build(&mut shape, &mut seed);
        let census = arch.census("toy", [3, 16, 16], 10);
        assert_eq!(param_count(m.as_mut()), census.param_count());
        assert_eq!(shape, [10, 1, 1]);
    }

    #[test]
    fn built_model_runs_forward_backward() {
        let arch = toy();
        let mut shape = [3usize, 16, 16];
        let mut seed = 3u64;
        let mut m = arch.build(&mut shape, &mut seed);
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, 1);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, 10]);
        let dx = m.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn inception_concat_shapes() {
        let arch = Arch::Inception(vec![
            Arch::conv_bn_relu(4, 1, 1, 0),
            Arch::Seq(vec![Arch::conv_bn_relu(2, 1, 1, 0), Arch::conv_bn_relu(6, 3, 1, 1)]),
            Arch::Seq(vec![
                Arch::MaxPool { kernel: 3, stride: 1, pad: 1 },
                Arch::conv_bn_relu(2, 1, 1, 0),
            ]),
        ]);
        let mut shape = [8usize, 10, 10];
        let mut seed = 0;
        let mut m = arch.build(&mut shape, &mut seed);
        assert_eq!(shape, [12, 10, 10]);
        let y = m.forward(&Tensor::randn(&[1, 8, 10, 10], 1.0, 2), true);
        assert_eq!(y.shape(), &[1, 12, 10, 10]);
        // Census agrees.
        let census = arch.census("inc", [8, 10, 10], 0);
        let mut m2 = m;
        assert_eq!(param_count(m2.as_mut()), census.param_count());
    }

    #[test]
    fn census_conv_flops_formula() {
        let arch = Arch::Conv { out_c: 64, kernel: 7, stride: 2, pad: 3, bias: false };
        let c = arch.census("stem", [3, 224, 224], 0);
        // 2 · 7·7·3·64 · 112·112
        let expect = 2.0 * 49.0 * 3.0 * 64.0 * 112.0 * 112.0;
        assert_eq!(c.layers[0].fwd_flops, expect);
        assert_eq!(c.layers[0].params, 64 * 3 * 49);
    }

    #[test]
    fn deterministic_build() {
        let arch = toy();
        let build = || {
            let mut shape = [3usize, 16, 16];
            let mut seed = 7u64;
            let mut m = arch.build(&mut shape, &mut seed);
            dcnn_tensor::layers::collect_params(m.as_mut())
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic]
    fn fc_before_gap_panics() {
        let arch = Arch::Fc { out: 10 };
        let mut shape = [4usize, 2, 2];
        let mut seed = 0;
        let _ = arch.build(&mut shape, &mut seed);
    }
}
