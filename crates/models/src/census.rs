//! Analytic per-layer cost census.
//!
//! The paper times training on P100 GPUs; our device model (`dcnn-gpusim`)
//! needs to know, per layer: how many FLOPs the forward and backward kernels
//! execute, how many bytes memory-bound kernels touch, and how large
//! parameters and activations are. This module is the schema those numbers
//! flow through.

use serde::{Deserialize, Serialize};

/// Kernel class, which determines the efficiency curve the device model
/// applies (convolutions and GEMMs run near peak; normalization, activation
/// and pooling kernels are memory-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Implicit-GEMM convolution.
    Conv,
    /// Dense matrix multiply (classifier head).
    Gemm,
    /// Batch normalization.
    Norm,
    /// Elementwise (ReLU, residual add).
    Pointwise,
    /// Pooling.
    Pool,
}

/// Cost of one layer, per input sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerCost {
    /// Human-readable layer name (e.g. `conv3_2/3x3`).
    pub name: String,
    /// Kernel class.
    pub kind: LayerKind,
    /// Trainable parameter count.
    pub params: usize,
    /// Forward FLOPs per sample (multiply-accumulate = 2 FLOPs).
    pub fwd_flops: f64,
    /// Backward FLOPs per sample (data + weight gradients).
    pub bwd_flops: f64,
    /// Bytes read+written per sample by memory-bound kernels (forward).
    pub bytes_touched: f64,
    /// Output activation element count per sample.
    pub activation: usize,
}

/// The full per-layer census of a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCensus {
    /// Model name (`resnet50`, `googlenet-bn`, …).
    pub name: String,
    /// Input shape `[C, H, W]`.
    pub input: [usize; 3],
    /// Number of classes.
    pub classes: usize,
    /// Layers in execution order.
    pub layers: Vec<LayerCost>,
}

impl ModelCensus {
    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Gradient payload in bytes (f32) — what `MPI_Allreduce` moves each
    /// iteration (§5.1 quotes 93 MB for GoogLeNet-BN).
    pub fn payload_bytes(&self) -> f64 {
        self.param_count() as f64 * 4.0
    }

    /// Forward FLOPs for a batch of `n` samples.
    pub fn fwd_flops(&self, n: usize) -> f64 {
        self.layers.iter().map(|l| l.fwd_flops).sum::<f64>() * n as f64
    }

    /// Backward FLOPs for a batch of `n` samples.
    pub fn bwd_flops(&self, n: usize) -> f64 {
        self.layers.iter().map(|l| l.bwd_flops).sum::<f64>() * n as f64
    }

    /// Forward+backward FLOPs for a batch of `n` samples.
    pub fn train_flops(&self, n: usize) -> f64 {
        self.fwd_flops(n) + self.bwd_flops(n)
    }

    /// Total activation bytes per sample (what must fit in device memory
    /// alongside weights, and what the baseline data-parallel table moves
    /// through GPU1).
    pub fn activation_bytes(&self) -> f64 {
        self.layers.iter().map(|l| l.activation as f64).sum::<f64>() * 4.0
    }

    /// Bytes touched per sample by memory-bound kernels.
    pub fn bytes_touched(&self) -> f64 {
        self.layers.iter().map(|l| l.bytes_touched).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(params: usize, fwd: f64) -> LayerCost {
        LayerCost {
            name: "l".into(),
            kind: LayerKind::Conv,
            params,
            fwd_flops: fwd,
            bwd_flops: 2.0 * fwd,
            bytes_touched: 0.0,
            activation: 10,
        }
    }

    #[test]
    fn aggregations() {
        let c = ModelCensus {
            name: "toy".into(),
            input: [3, 8, 8],
            classes: 10,
            layers: vec![layer(100, 1e6), layer(50, 2e6)],
        };
        assert_eq!(c.param_count(), 150);
        assert_eq!(c.payload_bytes(), 600.0);
        assert_eq!(c.fwd_flops(4), 12e6);
        assert_eq!(c.bwd_flops(1), 6e6);
        assert_eq!(c.train_flops(1), 9e6);
        assert_eq!(c.activation_bytes(), 80.0);
    }

    #[test]
    fn serializes() {
        let c = ModelCensus { name: "t".into(), input: [1, 1, 1], classes: 2, layers: vec![] };
        let s = serde_json::to_string(&c).expect("serializable");
        assert!(s.contains("\"classes\":2"));
    }
}
