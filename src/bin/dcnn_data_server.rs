//! `dcnn-data-server` — a rank-resident DIMD blob server (the data-plane
//! half of the paper's §4.1 deployment, run as its own OS process).
//!
//! ```text
//! dcnn-data-server --workload data-epoch --world 2 \
//!     --rank 0 --servers 1 [--listen 127.0.0.1:0] [--addr-file PATH] \
//!     [--rendezvous HOST:PORT]
//! ```
//!
//! The server owns the [`Dimd`] partitions of every *virtual* trainer rank
//! `v < world` with `v % servers == rank`, serves their mini-batch requests
//! over DCTP data frames, and runs Algorithm 2's segmented alltoallv
//! between servers at the epoch boundaries the clients' handshakes request.
//! The dataset, partition seeds and shuffle parameters come from the named
//! workload's [`data_plane_spec`], so a service-backed run reproduces the
//! in-process run bit for bit.
//!
//! With one server the inter-server fabric is a single-rank thread cluster;
//! with more, the servers join their own TCP fabric through `--rendezvous`
//! (the same rendezvous protocol `dcnn-launch` uses, but a *separate*
//! fabric from the trainers'). `--addr-file` publishes the bound listen
//! address (ephemeral ports included) for launchers to collect into
//! `DCNN_DATA_SERVICE`.
//!
//! `DCNN_FAULT=kill-after-step=N@R` is reinterpreted on the data plane:
//! server `R` aborts the store loop after serving its `N`th batch, dropping
//! every client socket — the fault-injection tests assert the trainers die
//! fast with a structured `PeerDead` naming the server, not a hang.

use std::process::ExitCode;
use std::sync::Mutex;

use dcnn_collectives::{run_cluster, FaultSpec, RuntimeConfig};
use dcnn_dimd::{serve_blocking, Dimd, SynthImageNet};
use dist_cnn::launch::{data_plane_partition, data_plane_spec};

fn usage() -> ! {
    eprintln!(
        "usage: dcnn-data-server --workload NAME --world N \
         [--rank R] [--servers S] [--listen HOST:PORT] \
         [--addr-file PATH] [--rendezvous HOST:PORT]\n\
         workloads: data-epoch, data-storm"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut workload: Option<String> = None;
    let mut world: Option<usize> = None;
    let mut rank = 0usize;
    let mut servers = 1usize;
    let mut listen = "127.0.0.1:0".to_string();
    let mut addr_file: Option<String> = None;
    let mut rendezvous: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| args.next().unwrap_or_else(|| {
            eprintln!("dcnn-data-server: {what} needs a value");
            usage()
        });
        match a.as_str() {
            "--workload" | "-w" => workload = Some(take("--workload")),
            "--world" => world = take("--world").parse().ok(),
            "--rank" => rank = take("--rank").parse().unwrap_or_else(|_| usage()),
            "--servers" => servers = take("--servers").parse().unwrap_or_else(|_| usage()),
            "--listen" => listen = take("--listen"),
            "--addr-file" => addr_file = Some(take("--addr-file")),
            "--rendezvous" => rendezvous = Some(take("--rendezvous")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("dcnn-data-server: unexpected argument {other:?}");
                usage();
            }
        }
    }
    let (Some(workload), Some(world)) = (workload, world) else { usage() };
    // Both data-plane workloads share one spec; the flag exists so future
    // workloads with different datasets stay addressable.
    let spec = match workload.as_str() {
        "data-epoch" | "data-storm" => data_plane_spec(),
        other => {
            eprintln!("dcnn-data-server: unknown data workload {other:?}");
            usage();
        }
    };
    if servers == 0 || rank >= servers {
        eprintln!("dcnn-data-server: rank {rank} out of range for {servers} server(s)");
        usage();
    }
    if servers > 1 && rendezvous.is_none() {
        eprintln!("dcnn-data-server: {servers} servers need --rendezvous for the shuffle fabric");
        usage();
    }

    // Load this server's share of the virtual trainer ranks' partitions —
    // the same (seed, quality) derivation the trainers use in-process.
    let ds = SynthImageNet::new(spec.synth.clone());
    let partitions: Vec<(usize, Dimd)> = (0..world)
        .filter(|v| v % servers == rank)
        .map(|v| (v, data_plane_partition(&spec, &ds, v, world)))
        .collect();

    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dcnn-data-server: bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound address").to_string();
    if let Some(path) = &addr_file {
        // Write to a temp name then rename: collectors polling the path
        // never observe a half-written address.
        let tmp = format!("{path}.tmp");
        if let Err(e) = std::fs::write(&tmp, &addr).and_then(|()| std::fs::rename(&tmp, path)) {
            eprintln!("dcnn-data-server: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("dcnn-data-server: rank {rank}/{servers}: listening on {addr}");

    let rt = RuntimeConfig::from_env().unwrap_or_else(|e| {
        eprintln!("dcnn-data-server: {e}");
        std::process::exit(2);
    });
    // `kill-after-step=N@R` on the data plane: server R kills itself after
    // serving N batches.
    let fault_after = match rt.fault {
        Some(FaultSpec::KillAfterStep { step, rank: r }) if r == rank => Some(step),
        _ => None,
    };

    let trainer_world = world;
    let report = if servers == 1 {
        // Single server: the shuffle fabric is a 1-rank thread cluster (the
        // segmented alltoallv still runs — every exchange is a self-send).
        let cell = Mutex::new(Some((listener, partitions)));
        let mut out = run_cluster(1, |comm| {
            let (listener, partitions) = cell.lock().expect("state").take().expect("one rank");
            serve_blocking(listener, comm, partitions, trainer_world, fault_after)
        });
        out.swap_remove(0)
    } else {
        let cfg = rt
            .clone()
            .with_rank_world(rank, servers)
            .with_rendezvous(rendezvous.expect("checked above"));
        match dcnn_collectives::try_run_tcp_rank_with(&cfg, move |comm| {
            serve_blocking(listener, comm, partitions, trainer_world, fault_after)
        }) {
            Ok(run) => run.result,
            Err(e) => {
                eprintln!("dcnn-data-server: rank {rank}: shuffle fabric failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    match report {
        Ok(r) => {
            println!(
                "data-server rank={rank} served={} shuffles={} rounds={:?}",
                r.batches_served,
                r.shuffle_rounds.len(),
                r.shuffle_rounds
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dcnn-data-server: rank {rank}: {e}");
            ExitCode::FAILURE
        }
    }
}
