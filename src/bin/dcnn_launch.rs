//! `dcnn-launch` — run a registered workload as N separate OS processes
//! talking TCP, the repo's stand-in for `mpirun` on one box.
//!
//! ```text
//! dcnn-launch --ranks 4 --workload allreduce [--rendezvous 127.0.0.1:7077]
//! ```
//!
//! The parent picks a rendezvous address (an ephemeral localhost port
//! unless `--rendezvous` or `DCNN_RENDEZVOUS` says otherwise), then
//! re-executes itself N times with `DCNN_RANK`/`DCNN_WORLD`/
//! `DCNN_RENDEZVOUS` set. Each child joins the TCP fabric through
//! `try_run_tcp_rank_with`, runs the workload against its world `Comm`, and
//! rank 0 prints the report lines. A communication failure (for example a
//! peer dying mid-run) surfaces as a structured `CommError` report on stderr
//! and a non-zero child exit instead of a raw panic backtrace. The parent
//! exits non-zero if any rank fails, so the whole thing works as a CI smoke
//! test and as the harness for fault-injection runs (`DCNN_FAULT`).

use std::process::{Command, ExitCode};

use dist_cnn::launch::{workload, workload_names};

const CHILD_ENV: &str = "DCNN_LAUNCH_CHILD";
const WORKLOAD_ENV: &str = "DCNN_LAUNCH_WORKLOAD";

fn usage() -> ! {
    eprintln!(
        "usage: dcnn-launch --ranks N --workload NAME [--rendezvous HOST:PORT]\n\
         workloads: {}",
        workload_names().join(", ")
    );
    std::process::exit(2);
}

fn child_main() -> ExitCode {
    let name = std::env::var(WORKLOAD_ENV).unwrap_or_else(|_| usage());
    let work = workload(&name).unwrap_or_else(|| {
        eprintln!("dcnn-launch: unknown workload {name:?}");
        std::process::exit(2);
    });
    let cfg = dcnn_collectives::RuntimeConfig::from_env().unwrap_or_else(|e| {
        eprintln!("dcnn-launch: {e}");
        std::process::exit(2);
    });
    let run = dcnn_collectives::try_run_tcp_rank_with(&cfg, |comm| {
        let lines = work(comm);
        if comm.rank() == 0 {
            for line in &lines {
                println!("{line}");
            }
        }
    });
    match run {
        Ok(run) => {
            drop(run);
            ExitCode::SUCCESS
        }
        Err(e) => {
            // The panic hook already printed the structured report when the
            // failure unwound; this line ties it to the launcher's rank.
            let rank = cfg.rank.map_or_else(|| "?".to_string(), |r| r.to_string());
            eprintln!("dcnn-launch: rank {rank}: aborted: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    if std::env::var(CHILD_ENV).is_ok() {
        return child_main();
    }

    let mut ranks: Option<usize> = None;
    let mut name: Option<String> = None;
    let mut rendezvous = std::env::var("DCNN_RENDEZVOUS").ok();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" | "-n" => {
                ranks = args.next().and_then(|v| v.parse().ok());
            }
            "--workload" | "-w" => name = args.next(),
            "--rendezvous" => rendezvous = args.next(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("dcnn-launch: unexpected argument {other:?}");
                usage();
            }
        }
    }
    let (Some(n), Some(name)) = (ranks, name) else { usage() };
    if n == 0 || workload(&name).is_none() {
        usage();
    }

    // Pick the rendezvous address up front so every child agrees on it. An
    // ephemeral bind finds a free port; the listener is dropped and rank 0
    // rebinds it moments later (localhost, so the tiny race is acceptable
    // for a launcher).
    let rendezvous = rendezvous.unwrap_or_else(|| {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe free port");
        l.local_addr().expect("probe addr").to_string()
    });

    let exe = std::env::current_exe().expect("own executable path");
    let mut children = Vec::with_capacity(n);
    for rank in 0..n {
        let child = Command::new(&exe)
            .env(CHILD_ENV, "1")
            .env(WORKLOAD_ENV, &name)
            .env("DCNN_RANK", rank.to_string())
            .env("DCNN_WORLD", n.to_string())
            .env("DCNN_RENDEZVOUS", &rendezvous)
            .spawn();
        match child {
            Ok(c) => children.push((rank, c)),
            Err(e) => {
                eprintln!("dcnn-launch: spawn rank {rank}: {e}");
                for (_, mut c) in children {
                    let _ = c.kill();
                }
                return ExitCode::FAILURE;
            }
        }
    }

    let mut ok = true;
    for (rank, mut c) in children {
        match c.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("dcnn-launch: rank {rank} exited with {status}");
                ok = false;
            }
            Err(e) => {
                eprintln!("dcnn-launch: wait rank {rank}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
