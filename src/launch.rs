//! Registered workloads for `dcnn-launch`, the multi-process runner.
//!
//! A workload is a plain `fn(&Comm) -> Vec<String>`: it runs on every rank
//! of a cluster and returns report lines (rank 0's lines are what the
//! launcher prints). Keeping workloads transport-agnostic is the point —
//! the same function body runs on the threaded fabric inside one process
//! and across N OS processes over TCP, and because every line is derived
//! from deterministic math, the outputs must match byte-for-byte. The
//! integration tests and `ci.sh`'s smoke test compare exactly that.

use dcnn_collectives::primitives::allgather_bytes;
use dcnn_collectives::{crc32, AllreduceAlgo, Comm, RuntimeConfig};
use dcnn_dimd::{SynthConfig, SynthImageNet};
use dcnn_tensor::optim::LrSchedule;
use dcnn_trainer::{train_on_comm, TrainConfig};

/// Names every registered workload, in registry order.
pub fn workload_names() -> &'static [&'static str] {
    &["allreduce", "quickstart-epoch", "bucketed-epoch", "overlap-epoch", "fault-epoch"]
}

/// Look a workload up by name.
pub fn workload(name: &str) -> Option<fn(&Comm) -> Vec<String>> {
    match name {
        "allreduce" => Some(allreduce_workload),
        "quickstart-epoch" => Some(quickstart_epoch_workload),
        "bucketed-epoch" => Some(bucketed_epoch_workload),
        "overlap-epoch" => Some(overlap_epoch_workload),
        "fault-epoch" => Some(fault_epoch_workload),
        _ => None,
    }
}

/// The `DCNN_*` environment, parsed strictly — a malformed value aborts the
/// workload with a message naming the variable rather than training with a
/// silently ignored override.
fn runtime() -> RuntimeConfig {
    RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Rank `rank`'s deterministic input value at element `i` — the same
/// pattern the allreduce equivalence tests use, so results are comparable
/// across test layers.
pub fn contribution(rank: usize, i: usize, seed: u64) -> f32 {
    let x = (rank as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(i as u64)
        .wrapping_add(seed);
    ((x % 1000) as f32 - 500.0) / 250.0
}

/// CRC-32 over the exact bit patterns of `buf` — a compact fingerprint
/// that only matches when two results are bitwise identical.
pub fn f32_fingerprint(buf: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(buf.len() * 4);
    for v in buf {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

/// Every allreduce algorithm (including multicolor) over deterministic
/// per-rank data. Each rank fingerprints its result buffer; an allgather
/// asserts every rank produced the *bitwise* same sums, then rank 0's
/// report carries one `allreduce <name> ... crc=<hex>` line per algorithm
/// plus the per-rank `bytes_sent`/`msgs_sent` counters accumulated up to
/// that point. Both the crc and the counters are backend-invariant, which
/// is exactly what the thread-vs-TCP smoke comparison checks.
pub fn allreduce_workload(comm: &Comm) -> Vec<String> {
    const LEN: usize = 260;
    const SEED: u64 = 42;
    let mut lines = Vec::new();
    for algo in AllreduceAlgo::all() {
        let a = algo.build();
        let mut buf: Vec<f32> =
            (0..LEN).map(|i| contribution(comm.rank(), i, SEED)).collect();
        a.run(comm, &mut buf);
        let crc = f32_fingerprint(&buf);
        let all = allgather_bytes(comm, crc.to_le_bytes().to_vec());
        for (r, b) in all.iter().enumerate() {
            let theirs = u32::from_le_bytes(b.as_slice().try_into().expect("4"));
            assert_eq!(
                theirs,
                crc,
                "{}: rank {} disagrees with rank {r}",
                a.name(),
                comm.rank()
            );
        }
        lines.push(format!("allreduce {} len={LEN} crc={crc:08x}", a.name()));
    }
    // Counter snapshot before the stats exchange itself, gathered so rank
    // 0's report covers every rank.
    let s = comm.stats();
    let mut mine = Vec::with_capacity(16);
    mine.extend_from_slice(&s.bytes_sent.to_le_bytes());
    mine.extend_from_slice(&s.msgs_sent.to_le_bytes());
    for (r, b) in allgather_bytes(comm, mine).iter().enumerate() {
        let bytes = u64::from_le_bytes(b[0..8].try_into().expect("8"));
        let msgs = u64::from_le_bytes(b[8..16].try_into().expect("8"));
        lines.push(format!("stats rank={r} bytes_sent={bytes} msgs_sent={msgs}"));
    }
    lines
}

/// One epoch of the quickstart training run (scaled ResNet, DIMD
/// partitions, multicolor allreduce) on however many ranks the cluster
/// has. Every rank regenerates the same synthetic dataset from the same
/// seed, exactly as separate nodes would. The loss is printed to full
/// precision: training math is deterministic, so backends must agree on
/// every bit of it.
pub fn quickstart_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 24;
    synth.val_per_class = 8;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 1, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(77)
    });
    stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect()
}

/// One epoch of overlap-aware training: a wider ResNet than the quickstart
/// (enough parameters to split into many buckets) trained with whatever
/// `DCNN_BUCKET_BYTES` says — `0`/unset keeps the fused blocking exchange,
/// anything else packs reverse-layer buckets and launches their allreduces
/// nonblocking (from the backward hook by default; `DCNN_OVERLAP_MODE=drain`
/// defers the launches to after backward). The epoch lines carry the loss to
/// full precision; at two ranks every per-element gradient sum is a single
/// f32 addition, so the bucketed run must reproduce the blocking loss
/// *bitwise* and `ci.sh` diffs exactly that. The trailing `inflight_hwm=`
/// line reports the cluster-wide high-water mark of concurrently in-flight
/// bucket reduces — the observable proof that the overlap engine actually
/// overlapped.
pub fn bucketed_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 12;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 1, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 24,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(78)
    });
    let mut lines: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect();
    let hwm = stats.iter().map(|s| s.async_inflight_hwm).max().unwrap_or(0);
    lines.push(format!("inflight_hwm={hwm}"));
    lines
}

/// Two epochs of backward-hook overlap training on the wide ResNet. Same
/// model and data as [`bucketed_epoch_workload`] but longer, so the
/// `overlap_frac=` line (cluster-max fraction of async reduce time hidden
/// behind other work, best epoch) is a stable measurement: `ci.sh` runs
/// this workload blocking, drain-bucketed and hook-bucketed, checks the
/// `epoch` lines agree bitwise across all three, and asserts the hooked
/// schedule hides strictly more reduce time than the end-of-backward drain
/// schedule. The trailing `inflight_hwm=` line proves reduces overlapped.
pub fn overlap_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 12;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 2, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 24,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(78)
    });
    let mut lines: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect();
    let overlap = stats.iter().map(|s| s.overlap_frac).fold(0.0, f64::max);
    let hwm = stats.iter().map(|s| s.async_inflight_hwm).max().unwrap_or(0);
    lines.push(format!("overlap_frac={overlap:.6}"));
    lines.push(format!("inflight_hwm={hwm}"));
    lines
}

/// Failure-path workload for the fault-injection harness: three epochs of
/// the quickstart model, with `DCNN_FAULT` (parsed through `RuntimeConfig`
/// and overlaid by `TrainConfig::apply_runtime`) arming per-step stderr
/// heartbeats and, for `kill-after-step=N[@R]`, an abort of rank `R` right
/// after its `N`th optimizer step — several steps into epoch 0 for small
/// `N`. A clean run (no fault set) prints the usual epoch lines; a faulted
/// TCP run is expected to die — the victim via `abort()`, every survivor
/// with a structured `PeerDead` report naming it — which is exactly what
/// `tests/transport_process.rs` and the `ci.sh` fault smoke assert on.
pub fn fault_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 24;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 3, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(77)
    });
    stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_name() {
        for name in workload_names() {
            assert!(workload(name).is_some(), "{name} missing from registry");
        }
        assert!(workload("no-such-workload").is_none());
    }

    #[test]
    fn allreduce_workload_reports_on_threads() {
        let out = dcnn_collectives::run_cluster(2, allreduce_workload);
        let lines = &out[0];
        let algos = AllreduceAlgo::all().len();
        assert_eq!(lines.len(), algos + 2, "{lines:?}");
        assert!(lines[0].starts_with("allreduce "));
        assert!(lines[algos].starts_with("stats rank=0 "));
        // Identical report on every rank (the workload asserts bitwise
        // agreement internally, so the lines must match too).
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn overlap_epoch_workload_reports_on_threads() {
        let out = dcnn_collectives::run_cluster(2, overlap_epoch_workload);
        let lines = &out[0];
        assert_eq!(lines.len(), 4, "{lines:?}"); // two epochs + overlap + hwm
        assert!(lines[0].starts_with("epoch 0 loss="), "{lines:?}");
        assert!(lines[2].starts_with("overlap_frac="), "{lines:?}");
        assert!(lines[3].starts_with("inflight_hwm="), "{lines:?}");
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn bucketed_epoch_workload_reports_on_threads() {
        let out = dcnn_collectives::run_cluster(2, bucketed_epoch_workload);
        let lines = &out[0];
        assert_eq!(lines.len(), 2, "{lines:?}"); // one epoch + hwm line
        assert!(lines[0].starts_with("epoch 0 loss="), "{lines:?}");
        assert!(lines[1].starts_with("inflight_hwm="), "{lines:?}");
        // Training math is deterministic: every rank reports the same bits.
        assert_eq!(out[0], out[1]);
    }
}
