//! Registered workloads for `dcnn-launch`, the multi-process runner.
//!
//! A workload is a plain `fn(&Comm) -> Vec<String>`: it runs on every rank
//! of a cluster and returns report lines (rank 0's lines are what the
//! launcher prints). Keeping workloads transport-agnostic is the point —
//! the same function body runs on the threaded fabric inside one process
//! and across N OS processes over TCP, and because every line is derived
//! from deterministic math, the outputs must match byte-for-byte. The
//! integration tests and `ci.sh`'s smoke test compare exactly that.

use dcnn_collectives::primitives::allgather_bytes;
use dcnn_collectives::transport::crc32_update;
use dcnn_collectives::{
    crc32, AlgoPolicy, AllreduceAlgo, CellSpec, Comm, RuntimeConfig, TunerConfig,
};
use dcnn_dimd::{BatchSource, Dimd, Hello, LocalSource, ServiceSource, SynthConfig, SynthImageNet};
use dcnn_tensor::optim::LrSchedule;
use dcnn_trainer::{train_on_comm, TrainConfig};

/// Names every registered workload, in registry order.
pub fn workload_names() -> &'static [&'static str] {
    &[
        "allreduce",
        "quickstart-epoch",
        "bucketed-epoch",
        "overlap-epoch",
        "fault-epoch",
        "sharded-epoch",
        "autotune-epoch",
        "data-epoch",
        "data-storm",
        "eval-cell",
    ]
}

/// Look a workload up by name.
pub fn workload(name: &str) -> Option<fn(&Comm) -> Vec<String>> {
    match name {
        "allreduce" => Some(allreduce_workload),
        "quickstart-epoch" => Some(quickstart_epoch_workload),
        "bucketed-epoch" => Some(bucketed_epoch_workload),
        "overlap-epoch" => Some(overlap_epoch_workload),
        "fault-epoch" => Some(fault_epoch_workload),
        "sharded-epoch" => Some(sharded_epoch_workload),
        "autotune-epoch" => Some(autotune_epoch_workload),
        "data-epoch" => Some(data_epoch_workload),
        "data-storm" => Some(data_storm_workload),
        "eval-cell" => Some(eval_cell_workload),
        _ => None,
    }
}

/// The `DCNN_*` environment, parsed strictly — a malformed value aborts the
/// workload with a message naming the variable rather than training with a
/// silently ignored override.
fn runtime() -> RuntimeConfig {
    RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Rank `rank`'s deterministic input value at element `i` — the same
/// pattern the allreduce equivalence tests use, so results are comparable
/// across test layers.
pub fn contribution(rank: usize, i: usize, seed: u64) -> f32 {
    let x = (rank as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(i as u64)
        .wrapping_add(seed);
    ((x % 1000) as f32 - 500.0) / 250.0
}

/// CRC-32 over the exact bit patterns of `buf` — a compact fingerprint
/// that only matches when two results are bitwise identical.
pub fn f32_fingerprint(buf: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(buf.len() * 4);
    for v in buf {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

/// Every allreduce algorithm (including multicolor) over deterministic
/// per-rank data. Each rank fingerprints its result buffer; an allgather
/// asserts every rank produced the *bitwise* same sums, then rank 0's
/// report carries one `allreduce <name> ... crc=<hex>` line per algorithm
/// plus the per-rank `bytes_sent`/`msgs_sent` counters accumulated up to
/// that point. Both the crc and the counters are backend-invariant, which
/// is exactly what the thread-vs-TCP smoke comparison checks.
pub fn allreduce_workload(comm: &Comm) -> Vec<String> {
    const LEN: usize = 260;
    const SEED: u64 = 42;
    let mut lines = Vec::new();
    for algo in AllreduceAlgo::all() {
        let a = algo.build();
        let mut buf: Vec<f32> =
            (0..LEN).map(|i| contribution(comm.rank(), i, SEED)).collect();
        a.run(comm, &mut buf);
        let crc = f32_fingerprint(&buf);
        let all = allgather_bytes(comm, crc.to_le_bytes().to_vec());
        for (r, b) in all.iter().enumerate() {
            let theirs = u32::from_le_bytes(b.as_slice().try_into().expect("4"));
            assert_eq!(
                theirs,
                crc,
                "{}: rank {} disagrees with rank {r}",
                a.name(),
                comm.rank()
            );
        }
        lines.push(format!("allreduce {} len={LEN} crc={crc:08x}", a.name()));
    }
    // Counter snapshot before the stats exchange itself, gathered so rank
    // 0's report covers every rank.
    let s = comm.stats();
    let mut mine = Vec::with_capacity(16);
    mine.extend_from_slice(&s.bytes_sent.to_le_bytes());
    mine.extend_from_slice(&s.msgs_sent.to_le_bytes());
    for (r, b) in allgather_bytes(comm, mine).iter().enumerate() {
        let bytes = u64::from_le_bytes(b[0..8].try_into().expect("8"));
        let msgs = u64::from_le_bytes(b[8..16].try_into().expect("8"));
        lines.push(format!("stats rank={r} bytes_sent={bytes} msgs_sent={msgs}"));
    }
    lines
}

/// One epoch of the quickstart training run (scaled ResNet, DIMD
/// partitions, multicolor allreduce) on however many ranks the cluster
/// has. Every rank regenerates the same synthetic dataset from the same
/// seed, exactly as separate nodes would. The loss is printed to full
/// precision: training math is deterministic, so backends must agree on
/// every bit of it.
pub fn quickstart_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 24;
    synth.val_per_class = 8;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 1, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(77)
    });
    stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect()
}

/// One epoch of overlap-aware training: a wider ResNet than the quickstart
/// (enough parameters to split into many buckets) trained with whatever
/// `DCNN_BUCKET_BYTES` says — `0`/unset keeps the fused blocking exchange,
/// anything else packs reverse-layer buckets and launches their allreduces
/// nonblocking (from the backward hook by default; `DCNN_OVERLAP_MODE=drain`
/// defers the launches to after backward). The epoch lines carry the loss to
/// full precision; at two ranks every per-element gradient sum is a single
/// f32 addition, so the bucketed run must reproduce the blocking loss
/// *bitwise* and `ci.sh` diffs exactly that. The trailing `inflight_hwm=`
/// line reports the cluster-wide high-water mark of concurrently in-flight
/// bucket reduces — the observable proof that the overlap engine actually
/// overlapped.
pub fn bucketed_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 12;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 1, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 24,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(78)
    });
    let mut lines: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect();
    let hwm = stats.iter().map(|s| s.async_inflight_hwm).max().unwrap_or(0);
    lines.push(format!("inflight_hwm={hwm}"));
    lines
}

/// Two epochs of backward-hook overlap training on the wide ResNet. Same
/// model and data as [`bucketed_epoch_workload`] but longer, so the
/// `overlap_frac=` line (cluster-max fraction of async reduce time hidden
/// behind other work, best epoch) is a stable measurement: `ci.sh` runs
/// this workload blocking, drain-bucketed and hook-bucketed, checks the
/// `epoch` lines agree bitwise across all three, and asserts the hooked
/// schedule hides strictly more reduce time than the end-of-backward drain
/// schedule. The trailing `inflight_hwm=` line proves reduces overlapped.
pub fn overlap_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 12;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 2, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 24,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(78)
    });
    let mut lines: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect();
    let overlap = stats.iter().map(|s| s.overlap_frac).fold(0.0, f64::max);
    let hwm = stats.iter().map(|s| s.async_inflight_hwm).max().unwrap_or(0);
    lines.push(format!("overlap_frac={overlap:.6}"));
    lines.push(format!("inflight_hwm={hwm}"));
    lines
}

/// Failure-path workload for the fault-injection harness: three epochs of
/// the quickstart model, with `DCNN_FAULT` (parsed through `RuntimeConfig`
/// and overlaid by `TrainConfig::apply_runtime`) arming per-step stderr
/// heartbeats and, for `kill-after-step=N[@R]`, an abort of rank `R` right
/// after its `N`th optimizer step — several steps into epoch 0 for small
/// `N`. A clean run (no fault set) prints the usual epoch lines; a faulted
/// TCP run is expected to die — the victim via `abort()`, every survivor
/// with a structured `PeerDead` report naming it — which is exactly what
/// `tests/transport_process.rs` and the `ci.sh` fault smoke assert on.
pub fn fault_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 24;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 3, &runtime());
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(77)
    });
    stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect()
}

/// Two epochs of the wide ResNet on the ring-reduce-scatter algorithm,
/// trained with whatever sync strategy `DCNN_SHARD_OPTIM` selects — unset
/// keeps the replicated path (allreduce + full-replica SGD), `1` shards the
/// optimizer (reduce-scatter gradients → shard-local step → allgather
/// parameters). The ring algorithm is forced because its reduce-scatter
/// schedule anchors every element's sum at the owner rank, so the sharded
/// run must reproduce the replicated loss *bitwise* at any world size —
/// `ci.sh` diffs the `epoch` lines of both modes at four ranks. The
/// trailing `resident rank=…` lines gather each rank's measured parameter
/// and optimizer residency: the sharded run's `opt_bytes` must shrink by
/// ~world-size ×, which is the strategy's memory win, measured.
pub fn sharded_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 24;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 2, &runtime());
    cfg.algo = AllreduceAlgo::RingReduceScatter.into();
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 24,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(78)
    });
    let mut lines: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect();
    // Gather the last epoch's measured residency from every rank so rank
    // 0's report carries the whole cluster's memory picture.
    let last = stats.last().expect("at least one epoch");
    let mut mine = Vec::with_capacity(16);
    mine.extend_from_slice(&last.resident_param_bytes.to_le_bytes());
    mine.extend_from_slice(&last.resident_opt_bytes.to_le_bytes());
    for (r, b) in allgather_bytes(comm, mine).iter().enumerate() {
        let param = u64::from_le_bytes(b[0..8].try_into().expect("8"));
        let opt = u64::from_le_bytes(b[8..16].try_into().expect("8"));
        lines.push(format!("resident rank={r} param_bytes={param} opt_bytes={opt}"));
    }
    lines
}

/// Three epochs of the wide ResNet under the self-tuning collective
/// selector. Unless `DCNN_ALGO` overrides it, the policy is
/// `auto:ring,halving-doubling` — two probe epochs rotate both candidates
/// over the live buckets, then the measured crossover table is
/// cluster-agreed and epoch 2 trains on the frozen per-size choices.
/// `DCNN_BUCKET_BYTES` defaults to 4096 here so there are real buckets to
/// probe. The epoch lines carry the loss to full precision; the trailing
/// `decisions rank=…` lines gather every rank's final decision table, which
/// must be identical on all ranks (the table is agreed before it is used) —
/// `ci.sh` asserts exactly that, plus bitwise-equal losses against a fixed
/// run when the candidate set is pinned to one algorithm.
pub fn autotune_epoch_workload(comm: &Comm) -> Vec<String> {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 12;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let rt = runtime();
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, 3, &rt);
    if rt.algo.is_none() {
        cfg.algo = AlgoPolicy::Auto(TunerConfig::with_candidates(vec![
            AllreduceAlgo::PipelinedRing,
            AllreduceAlgo::HalvingDoubling,
        ]));
    }
    if rt.bucket_bytes.is_none() {
        cfg.bucket_bytes = 4096;
    }
    cfg.crop = 16;
    cfg.validate = false;
    cfg.shuffle_every_epochs = 0;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 24,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(78)
    });
    let mut lines: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect();
    // Gather every rank's final decision table so rank 0's report proves
    // (or disproves) cluster-wide agreement.
    let last = stats.last().expect("at least one epoch");
    for (r, b) in allgather_bytes(comm, last.algo_choices.clone().into_bytes())
        .iter()
        .enumerate()
    {
        let table = String::from_utf8_lossy(b);
        lines.push(format!("decisions rank={r} {table}"));
    }
    lines
}

/// One `dcnn-eval` matrix cell on real OS processes: rebuild the
/// [`CellSpec`] from the `DCNN_*` environment the harness exported
/// (`CellSpec::to_env`), measure it on this communicator, cross-check the
/// reduction fingerprint across every rank, and report rank 0's
/// measurement as a single JSON line — the only stdout line, so the
/// harness can parse it straight off `dcnn-launch`'s output.
pub fn eval_cell_workload(comm: &Comm) -> Vec<String> {
    let cell = CellSpec::from_runtime(&runtime(), comm.size());
    let m = cell
        .measure_on_comm(comm)
        .unwrap_or_else(|e| panic!("rank {}: {e}", comm.rank()));
    for (r, b) in allgather_bytes(comm, m.fingerprint.to_le_bytes().to_vec())
        .iter()
        .enumerate()
    {
        let theirs = u32::from_le_bytes(b.as_slice().try_into().expect("4"));
        assert_eq!(
            theirs,
            m.fingerprint,
            "cell {}: rank {} disagrees with rank {r} on the reduced bits",
            cell.id(),
            comm.rank()
        );
    }
    vec![m.to_json()]
}

/// The dataset and shuffle parameters shared by the data-plane workloads
/// (`data-epoch`, `data-storm`) and the `dcnn-data-server` binary. The
/// trainers and the servers are separate OS processes that never exchange
/// configuration beyond the [`Hello`] handshake, so both sides derive the
/// dataset, the per-rank partition seeds and the epoch-shuffle parameters
/// from this one function — config skew here is exactly what the server's
/// handshake cross-check exists to catch.
#[derive(Clone)]
pub struct DataPlaneSpec {
    /// Synthetic dataset shape (identical on every participant).
    pub synth: SynthConfig,
    /// DIMD codec quality.
    pub quality: u8,
    /// Base seed; rank `r`'s partition uses `seed ^ (r << 20)`.
    pub seed: u64,
    /// Epochs the job runs.
    pub epochs: usize,
    /// Cross-node shuffle cadence (epochs).
    pub shuffle_every: usize,
    /// Algorithm 2 segmentation cap, deliberately tiny so even this toy
    /// dataset forces multi-round segmented exchanges.
    pub segment_bytes: usize,
    /// Network input crop.
    pub crop: usize,
}

/// The one spec both data-plane workloads and the server binary share.
pub fn data_plane_spec() -> DataPlaneSpec {
    let mut synth = SynthConfig::tiny(4);
    synth.train_per_class = 24;
    synth.val_per_class = 4;
    synth.base_hw = 16;
    DataPlaneSpec {
        synth,
        quality: 70,
        seed: 42,
        epochs: 2,
        shuffle_every: 1,
        segment_bytes: 2048,
        crop: 16,
    }
}

/// Load the [`Dimd`] partition for virtual rank `v` of `world` under the
/// data-plane spec — the same call the trainer makes in-process and the
/// blob server makes on behalf of its hosted ranks.
pub fn data_plane_partition(spec: &DataPlaneSpec, ds: &SynthImageNet, v: usize, world: usize) -> Dimd {
    Dimd::load_partition(ds, v, world, spec.quality, spec.seed ^ ((v as u64) << 20))
}

/// Two epochs of quickstart-model training with the cross-node epoch
/// shuffle on (cadence 1) and a deliberately small Algorithm 2 segment cap,
/// so epoch 1's batches depend on a real multi-round segmented alltoallv.
/// With `DCNN_DATA_SERVICE` set, every rank streams its batches from the
/// blob-server fleet instead of loading a partition in-process — and must
/// print byte-identical `epoch` lines, which is the data plane's
/// correctness contract (`ci.sh` diffs exactly that).
pub fn data_epoch_workload(comm: &Comm) -> Vec<String> {
    let spec = data_plane_spec();
    let ds = SynthImageNet::new(spec.synth.clone());
    let mut cfg = TrainConfig::from_runtime(comm.size(), 2, 4, spec.epochs, &runtime());
    cfg.crop = spec.crop;
    cfg.validate = false;
    cfg.quality = spec.quality;
    cfg.seed = spec.seed;
    cfg.shuffle_every_epochs = spec.shuffle_every;
    cfg.shuffle_segment_bytes = spec.segment_bytes;
    cfg.lr = LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 100.0,
        decay: 0.1,
    };
    let stats = train_on_comm(comm, &cfg, &ds, &|| {
        crate::models::resnet::ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes: 4,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(77)
    });
    stats
        .iter()
        .map(|s| {
            format!(
                "epoch {} loss={} acc={:.4}",
                s.epoch,
                s.train_loss,
                s.train_acc
            )
        })
        .collect()
}

/// Data-plane soak: every rank is a pure *consumer* — no model, no SGD —
/// that drains its full share of batches for all epochs and fingerprints
/// every byte it saw. With `DCNN_DATA_SERVICE` set the ranks hammer the
/// blob-server fleet concurrently (the many-client storm); without it each
/// rank serves itself in-process from the same partitions. Both modes must
/// emit identical `storm rank=` lines — the service can't lose, duplicate
/// or reorder a batch without changing a crc.
pub fn data_storm_workload(comm: &Comm) -> Vec<String> {
    let spec = data_plane_spec();
    let ds = SynthImageNet::new(spec.synth.clone());
    let rt = runtime();
    let n = comm.size();
    let me = comm.rank();
    let batch = 4;
    let iterations = (ds.train_len() / (batch * n)).max(1);
    let depth = rt.data_prefetch_depth_or_default();
    let workers = rt.data_decode_workers_or_default();

    let mut source: Box<dyn BatchSource> = match &rt.data_service {
        None => Box::new(LocalSource::new(
            comm,
            data_plane_partition(&spec, &ds, me, n),
            iterations,
            batch,
            spec.crop,
            depth,
            workers,
            spec.segment_bytes,
        )),
        Some(addrs) => {
            let addrs: Vec<String> =
                addrs.split(',').map(|s| s.trim().to_string()).collect();
            let hello = Hello {
                rank: me,
                world: n,
                batch,
                requests_per_epoch: iterations,
                epochs: spec.epochs,
                shuffle_every: spec.shuffle_every,
                segment_bytes: spec.segment_bytes as u64,
            };
            let src = ServiceSource::connect(
                &addrs,
                hello,
                spec.crop,
                depth,
                workers,
                std::time::Duration::from_secs(30),
            )
            .unwrap_or_else(|e| panic!("rank {me}: {e}"));
            Box::new(src)
        }
    };

    let mut crc = !0u32;
    let mut batches = 0usize;
    for epoch in 0..spec.epochs {
        source.begin_epoch(epoch);
        for _ in 0..iterations {
            let (x, labels) = source.next_batch();
            for v in x.data() {
                crc = crc32_update(crc, &v.to_le_bytes());
            }
            for l in &labels {
                crc = crc32_update(crc, &(*l as u64).to_le_bytes());
            }
            batches += 1;
        }
        let shuffle_due =
            spec.shuffle_every > 0 && (epoch + 1) % spec.shuffle_every == 0;
        source.end_epoch(epoch, shuffle_due);
    }
    source.finish();
    let crc = !crc;

    // Rank 0's report covers every rank: gather (batches, crc) pairs.
    let mut mine = Vec::with_capacity(12);
    mine.extend_from_slice(&(batches as u64).to_le_bytes());
    mine.extend_from_slice(&crc.to_le_bytes());
    allgather_bytes(comm, mine)
        .iter()
        .enumerate()
        .map(|(r, b)| {
            let n_batches = u64::from_le_bytes(b[0..8].try_into().expect("8"));
            let c = u32::from_le_bytes(b[8..12].try_into().expect("4"));
            format!("storm rank={r} batches={n_batches} crc={c:08x}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_name() {
        for name in workload_names() {
            assert!(workload(name).is_some(), "{name} missing from registry");
        }
        assert!(workload("no-such-workload").is_none());
    }

    #[test]
    fn allreduce_workload_reports_on_threads() {
        let out = dcnn_collectives::run_cluster(2, allreduce_workload);
        let lines = &out[0];
        let algos = AllreduceAlgo::all().len();
        assert_eq!(lines.len(), algos + 2, "{lines:?}");
        assert!(lines[0].starts_with("allreduce "));
        assert!(lines[algos].starts_with("stats rank=0 "));
        // Identical report on every rank (the workload asserts bitwise
        // agreement internally, so the lines must match too).
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn overlap_epoch_workload_reports_on_threads() {
        let out = dcnn_collectives::run_cluster(2, overlap_epoch_workload);
        let lines = &out[0];
        assert_eq!(lines.len(), 4, "{lines:?}"); // two epochs + overlap + hwm
        assert!(lines[0].starts_with("epoch 0 loss="), "{lines:?}");
        assert!(lines[2].starts_with("overlap_frac="), "{lines:?}");
        assert!(lines[3].starts_with("inflight_hwm="), "{lines:?}");
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn sharded_epoch_workload_reports_on_threads() {
        let out = dcnn_collectives::run_cluster(2, sharded_epoch_workload);
        let lines = &out[0];
        assert_eq!(lines.len(), 4, "{lines:?}"); // two epochs + two resident lines
        assert!(lines[0].starts_with("epoch 0 loss="), "{lines:?}");
        assert!(lines[1].starts_with("epoch 1 loss="), "{lines:?}");
        assert!(lines[2].starts_with("resident rank=0 param_bytes="), "{lines:?}");
        assert!(lines[3].starts_with("resident rank=1 param_bytes="), "{lines:?}");
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn autotune_epoch_workload_converges_and_agrees_on_threads() {
        let out = dcnn_collectives::run_cluster(2, autotune_epoch_workload);
        let lines = &out[0];
        assert_eq!(lines.len(), 5, "{lines:?}"); // three epochs + two decisions lines
        assert!(lines[0].starts_with("epoch 0 loss="), "{lines:?}");
        assert!(lines[3].starts_with("decisions rank=0 "), "{lines:?}");
        assert!(lines[4].starts_with("decisions rank=1 "), "{lines:?}");
        // After the two probe epochs the table is frozen: real size-class
        // entries, not the probe placeholder — and identical on every rank.
        let table = |l: &str| l.splitn(3, ' ').nth(2).map(str::to_string).expect("table");
        assert!(table(&lines[3]).contains("<="), "{lines:?}");
        assert_eq!(table(&lines[3]), table(&lines[4]), "ranks disagree: {lines:?}");
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn eval_cell_workload_emits_one_json_measurement_per_rank() {
        let out = dcnn_collectives::run_cluster(2, eval_cell_workload);
        for lines in &out {
            assert_eq!(lines.len(), 1, "{lines:?}");
        }
        let parse = |l: &str| -> dcnn_collectives::CellMeasurement {
            dcnn_collectives::CellMeasurement::from_json(l).expect("measurement JSON")
        };
        let (m0, m1) = (parse(&out[0][0]), parse(&out[1][0]));
        assert!(m0.wall_ns > 0 && m0.bytes > 0);
        assert_eq!(m0.link_bytes_sent.len(), 2);
        // Wall times and link counters are per-rank, but the reduced bits
        // are not — the workload itself asserts cross-rank agreement.
        assert_eq!(m0.fingerprint, m1.fingerprint);
    }

    #[test]
    fn bucketed_epoch_workload_reports_on_threads() {
        let out = dcnn_collectives::run_cluster(2, bucketed_epoch_workload);
        let lines = &out[0];
        assert_eq!(lines.len(), 2, "{lines:?}"); // one epoch + hwm line
        assert!(lines[0].starts_with("epoch 0 loss="), "{lines:?}");
        assert!(lines[1].starts_with("inflight_hwm="), "{lines:?}");
        // Training math is deterministic: every rank reports the same bits.
        assert_eq!(out[0], out[1]);
    }
}
