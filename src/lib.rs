#![warn(missing_docs)]

//! # dist-cnn
//!
//! A from-scratch Rust reproduction of **Kumar, Sreedhar, Saxena, Sabharwal,
//! Verma — "Efficient Training of Convolutional Neural Nets on Large
//! Distributed Systems" (IEEE CLUSTER 2018, arXiv:1711.00705)**.
//!
//! The paper optimizes data-parallel synchronous SGD in Torch on a 32-node
//! POWER8/P100 cluster through three techniques, all implemented here:
//!
//! 1. **DIMD** — distributed in-memory data with an `MPI_Alltoallv` shuffle
//!    ([`dimd`]),
//! 2. **multi-color MPI Allreduce** — disjoint-interior k-ary spanning trees
//!    ([`collectives`]),
//! 3. **data-parallel-table optimizations** ([`dpt`]).
//!
//! The hardware the paper measured on is substituted by simulators built in
//! this workspace (fat-tree fluid-flow network: [`simnet`]; P100/Minsky
//! roofline: [`gpusim`]) while the *mathematics* of training runs for real
//! ([`tensor`], [`models`], [`trainer`]). See `DESIGN.md` for the full
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use dist_cnn::prelude::*;
//!
//! // Train a scaled ResNet across 2 learner ranks × 2 simulated GPUs,
//! // multi-color allreduce, DIMD partitions, for 1 epoch.
//! let ds = SynthImageNet::new(SynthConfig::tiny(4));
//! let mut cfg = TrainConfig::paper(2, 2, 4, 1);
//! cfg.crop = 32;
//! let stats = train_distributed(&cfg, &ds, || {
//!     dist_cnn::models::resnet::ResNetConfig::tiny(4).build(7)
//! });
//! assert_eq!(stats.len(), 1);
//! assert!(stats[0].train_loss.is_finite());
//! ```

pub use dcnn_core::*;

pub mod launch;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use dcnn_collectives::{
        run_cluster, Allreduce, AllreduceAlgo, ClusterBuilder, Comm, CommStats, MultiColor,
        OverlapMode, RuntimeConfig,
    };
    pub use dcnn_dimd::{Dimd, FileServer, SynthConfig, SynthImageNet};
    pub use dcnn_dpt::{DptExecutor, DptStrategy};
    pub use dcnn_gpusim::{DeviceModel, NodeModel};
    pub use dcnn_models::{googlenet_bn, resnet50};
    pub use dcnn_simnet::{CommSchedule, FatTree, SimOptions};
    pub use dcnn_tensor::{Module, Sgd, Tensor};
    pub use dcnn_trainer::{
        train_distributed, EpochTimeModel, OptimizationFlags, TrainConfig, Workload,
    };
}
