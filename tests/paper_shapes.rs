//! Integration tests asserting the *shapes* of the paper's results — who
//! wins, by roughly what factor — across the composed simulation stack.

use dist_cnn::collectives::CostModel;
use dist_cnn::experiments;
use dist_cnn::models::{googlenet_bn, resnet50};
use dist_cnn::prelude::*;

#[test]
fn fig5_shape_multicolor_wins_at_large_sizes() {
    let rows = experiments::fig5(16, false);
    let t = |algo: &str, mb: f64| {
        rows.iter().find(|r| r.algo == algo && r.mb == mb).expect("row").secs
    };
    // At the paper's 93 MB payload: multicolor < ring < default, and the
    // multicolor saving over default is in the 50–60%+ region.
    let (mc, ring, rd) = (t("multicolor", 93.0), t("ring", 93.0), t("openmpi-default", 93.0));
    assert!(mc < ring && ring < rd);
    let saving = 1.0 - mc / rd;
    assert!(saving > 0.45, "saving {saving:.2}");
}

#[test]
fn fig6_shape_ordering_and_scaling() {
    let rows = experiments::fig6();
    for nodes in [8usize, 16, 32] {
        let t = |algo: &str| {
            rows.iter()
                .find(|r| r.nodes == nodes && r.algo == algo)
                .expect("row")
                .epoch_secs
        };
        assert!(t("multicolor") < t("ring"));
        assert!(t("ring") < t("openmpi-default"));
    }
    // All three algorithms scale with node count (paper: "all the three
    // algorithms scale with the number of learners").
    for algo in ["multicolor", "ring", "openmpi-default"] {
        let series: Vec<f64> = [8usize, 16, 32]
            .iter()
            .map(|&n| {
                rows.iter().find(|r| r.nodes == n && r.algo == algo).expect("row").epoch_secs
            })
            .collect();
        assert!(series[0] > series[1] && series[1] > series[2], "{algo}: {series:?}");
    }
}

#[test]
fn fig7_fig8_shuffle_times_fall_with_nodes() {
    for rows in [experiments::fig7(), experiments::fig8()] {
        for w in rows.windows(2) {
            assert!(w[1].shuffle_secs < w[0].shuffle_secs);
            assert!(w[1].memory_gb < w[0].memory_gb);
        }
    }
    // Figure 7 magnitude: 22k at 32 nodes is seconds, not minutes.
    let f7 = experiments::fig7();
    let last = f7.last().expect("rows");
    assert!(last.shuffle_secs > 0.5 && last.shuffle_secs < 20.0);
}

#[test]
fn fig10_11_12_gains_positive() {
    for (rows, lo) in [
        (experiments::fig10(), 0.12),
        (experiments::fig11(), 0.05),
        (experiments::fig12(), 0.05),
    ] {
        for r in &rows {
            assert!(r.gain > lo, "{} at {} nodes: gain {:.3}", r.model, r.nodes, r.gain);
        }
    }
}

#[test]
fn table2_headline_within_reach_of_48_minutes() {
    let rows = experiments::table2();
    let ours = rows
        .iter()
        .find(|r| r.description == "Our work")
        .and_then(|r| r.modeled_minutes)
        .expect("modelled row");
    // Paper: 48 minutes. Constants were fixed a priori; require the same
    // ballpark (the shape claim is "well under the prior 65-minute record").
    assert!(
        (35.0..=65.0).contains(&ours),
        "90-epoch 256-GPU ResNet-50: {ours:.0} min (paper 48)"
    );
}

#[test]
fn record_run_beats_65_minute_prior() {
    let rows = experiments::table2();
    let ours = rows
        .iter()
        .find(|r| r.description == "Our work")
        .and_then(|r| r.modeled_minutes)
        .expect("modelled");
    assert!(ours < 65.0, "must beat Goyal et al.'s 65 minutes: {ours:.0}");
}

#[test]
fn epoch_model_breakdown_consistency() {
    // total == sum of parts, and compute dominates in the optimized config
    // (the premise of weak-scaling training).
    let m = EpochTimeModel::minsky(16);
    let b = m.epoch(
        &resnet50(),
        &Workload::imagenet_1k(),
        64,
        &OptimizationFlags::fully_optimized(),
        None,
    );
    let sum = b.compute + b.dpt + b.allreduce + b.data_io + b.shuffle;
    assert!((b.total() - sum).abs() < 1e-9);
    assert!(b.compute > b.total() * 0.5, "compute fraction {:.2}", b.compute / b.total());
    assert_eq!(b.data_io, 0.0);
}

#[test]
fn censuses_payloads_near_quoted_sizes() {
    // ResNet-50's census payload matches its quoted 102 MB; GoogLeNet-BN's
    // census is ~46 MB vs the paper's quoted 93 MB Torch buffer (documented
    // substitution: experiments use the paper's quoted payload).
    assert!((resnet50().payload_bytes() / 1e6 - 102.0).abs() < 2.0);
    let g = googlenet_bn().payload_bytes() / 1e6;
    assert!((40.0..60.0).contains(&g), "GoogLeNet census payload {g:.0} MB");
}

#[test]
fn allreduce_cost_model_sanity_across_node_counts() {
    // Multicolor allreduce stays fast as the cluster grows (Figure 6's
    // premise of ~90% scaling efficiency).
    let cost = CostModel::default();
    let algo = AllreduceAlgo::MultiColor(4).build();
    let mut times = Vec::new();
    for nodes in [8usize, 16, 32] {
        let topo = FatTree::minsky(nodes);
        times.push(
            algo.schedule(nodes, 93e6, &cost)
                .simulate(&topo, &SimOptions::default())
                .makespan,
        );
    }
    assert!(times[2] < times[0] * 3.0, "multicolor blew up with scale: {times:?}");
}
