//! Process-level coverage for the DIMD data-plane service: real
//! `dcnn-data-server` processes serving real `dcnn-launch` trainer
//! processes over TCP. The contract under test is the paper's §4.1
//! deployment story — moving the blob partitions out of the learners and
//! onto rank-resident servers must not change a single bit of training:
//! the `epoch loss=` lines (full f64 precision) and the storm crcs have to
//! match the in-process run exactly, shuffles included.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

/// A scratch directory unique to this test process, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("dcnn-data-plane-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A spawned blob server, killed on drop so a failing test can't leak it.
struct Server(Child);

impl Server {
    fn wait(mut self) -> Output {
        let mut child = std::mem::replace(&mut self.0, dummy_child());
        std::mem::forget(self);
        let status = child.wait().expect("wait server");
        let mut stderr = Vec::new();
        if let Some(mut e) = child.stderr.take() {
            use std::io::Read;
            let _ = e.read_to_end(&mut stderr);
        }
        Output { status, stdout: Vec::new(), stderr }
    }
}

fn dummy_child() -> Child {
    Command::new("true").spawn().expect("spawn /bin/true")
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn clean_env(cmd: &mut Command) {
    for var in dcnn_collectives::RuntimeConfig::ENV_VARS {
        cmd.env_remove(var);
    }
}

/// Start one server of a fleet and return it with the path its bound
/// address will appear at.
fn spawn_server(
    scratch: &Scratch,
    workload: &str,
    world: usize,
    rank: usize,
    servers: usize,
    rendezvous: Option<&str>,
    envs: &[(&str, &str)],
) -> (Server, PathBuf) {
    let addr_file = scratch.path(&format!("addr{rank}"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcnn-data-server"));
    cmd.args(["--workload", workload, "--world", &world.to_string()])
        .args(["--rank", &rank.to_string(), "--servers", &servers.to_string()])
        .args(["--addr-file", addr_file.to_str().expect("utf8 path")])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(r) = rendezvous {
        cmd.args(["--rendezvous", r]);
    }
    clean_env(&mut cmd);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    (Server(cmd.spawn().expect("spawn dcnn-data-server")), addr_file)
}

/// Block until every server has published its listen address.
fn collect_addrs(files: &[PathBuf]) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut addrs = Vec::with_capacity(files.len());
    for f in files {
        loop {
            match std::fs::read_to_string(f) {
                Ok(a) if !a.is_empty() => {
                    addrs.push(a);
                    break;
                }
                _ if Instant::now() > deadline => panic!("server never published {f:?}"),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
    addrs.join(",")
}

fn launch_trainers(ranks: usize, workload: &str, envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcnn-launch"));
    cmd.args(["--ranks", &ranks.to_string(), "--workload", workload]);
    clean_env(&mut cmd);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn dcnn-launch")
}

fn stdout_lines(out: &Output) -> Vec<String> {
    assert!(
        out.status.success(),
        "run failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone())
        .expect("utf8 report")
        .lines()
        .map(str::to_string)
        .collect()
}

/// A free localhost port for the servers' private shuffle fabric (probed
/// then released; the tiny race is acceptable for a test rendezvous).
fn free_port() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
    l.local_addr().expect("addr").to_string()
}

/// The tentpole acceptance: two trainer processes streaming from one blob
/// server process must print byte-identical `epoch loss=` lines to the
/// same workload run fully in-process — across two epochs with a
/// cross-node shuffle (run *by the server*, hosting both virtual ranks)
/// between them.
#[test]
fn service_backed_data_epoch_is_bitwise_identical() {
    let reference = stdout_lines(&launch_trainers(2, "data-epoch", &[]));
    assert_eq!(reference.len(), 2, "{reference:?}");
    assert!(reference[0].starts_with("epoch 0 loss="), "{reference:?}");

    let scratch = Scratch::new("one-server");
    let (server, addr_file) = spawn_server(&scratch, "data-epoch", 2, 0, 1, None, &[]);
    let addrs = collect_addrs(&[addr_file]);
    let service =
        stdout_lines(&launch_trainers(2, "data-epoch", &[("DCNN_DATA_SERVICE", &addrs)]));
    let srv = server.wait();
    assert!(srv.status.success(), "server: {}", String::from_utf8_lossy(&srv.stderr));
    assert_eq!(service, reference, "service-backed epochs diverged from in-process");
    // The server really ran Algorithm 2 between epochs, segmented: the
    // tiny cap forces multi-round exchanges.
    let stderr = String::from_utf8_lossy(&srv.stderr).to_string();
    for epoch in 0..2 {
        let line = stderr
            .lines()
            .find(|l| l.contains(&format!("shuffle epoch={epoch} rounds=")))
            .unwrap_or_else(|| panic!("no shuffle log for epoch {epoch}:\n{stderr}"));
        let rounds: usize =
            line.rsplit("rounds=").next().expect("rounds field").trim().parse().expect("count");
        assert!(rounds >= 2, "segmentation did not engage: {line}");
    }
}

/// Same contract with the partitions split across a two-server fleet: the
/// epoch shuffle now runs *between server processes* over their own TCP
/// fabric (segmented alltoallv, Algorithm 2) and must still reproduce the
/// in-process run bitwise.
#[test]
fn two_server_fleet_is_bitwise_identical() {
    let reference = stdout_lines(&launch_trainers(2, "data-epoch", &[]));

    let scratch = Scratch::new("two-servers");
    let rdv = free_port();
    let (s0, a0) = spawn_server(&scratch, "data-epoch", 2, 0, 2, Some(&rdv), &[]);
    let (s1, a1) = spawn_server(&scratch, "data-epoch", 2, 1, 2, Some(&rdv), &[]);
    let addrs = collect_addrs(&[a0, a1]);
    let service =
        stdout_lines(&launch_trainers(2, "data-epoch", &[("DCNN_DATA_SERVICE", &addrs)]));
    for s in [s0.wait(), s1.wait()] {
        assert!(s.status.success(), "server: {}", String::from_utf8_lossy(&s.stderr));
        assert!(
            String::from_utf8_lossy(&s.stderr).contains("shuffle epoch=0 rounds="),
            "fleet member never shuffled"
        );
    }
    assert_eq!(service, reference, "two-server fleet diverged from in-process");
}

/// The many-client storm: four consumer processes hammer one server
/// concurrently with pipelined requests and parallel decode, and every
/// byte of every batch (fingerprinted per rank) must match the in-process
/// run — the service can't lose, duplicate or reorder a batch without
/// changing a crc.
#[test]
fn data_storm_four_clients_matches_in_process() {
    let reference = stdout_lines(&launch_trainers(4, "data-storm", &[]));
    assert_eq!(reference.len(), 4, "{reference:?}");

    let scratch = Scratch::new("storm");
    let (server, addr_file) = spawn_server(&scratch, "data-storm", 4, 0, 1, None, &[]);
    let addrs = collect_addrs(&[addr_file]);
    let service = stdout_lines(&launch_trainers(
        4,
        "data-storm",
        &[
            ("DCNN_DATA_SERVICE", &addrs),
            ("DCNN_DATA_PREFETCH_DEPTH", "3"),
            ("DCNN_DATA_DECODE_WORKERS", "2"),
        ],
    ));
    let srv = server.wait();
    assert!(srv.status.success(), "server: {}", String::from_utf8_lossy(&srv.stderr));
    assert_eq!(service, reference, "storm crcs diverged from in-process");
}

/// Kill-the-server fault injection: `DCNN_FAULT=kill-after-step=N@0` on
/// the *server* makes it drop every client after its Nth served batch.
/// The trainers must die promptly — no hang, no timeout — each with a
/// structured `PeerDead` report naming the data server on the data plane.
#[test]
fn killed_server_fails_trainers_fast_with_structured_error() {
    let scratch = Scratch::new("fault");
    let (server, addr_file) =
        spawn_server(&scratch, "data-epoch", 2, 0, 1, None, &[("DCNN_FAULT", "kill-after-step=5@0")]);
    let addrs = collect_addrs(&[addr_file]);

    let start = Instant::now();
    let out = launch_trainers(2, "data-epoch", &[("DCNN_DATA_SERVICE", &addrs)]);
    let elapsed = start.elapsed();
    let srv = server.wait();

    assert!(!srv.status.success(), "faulted server exited cleanly");
    let srv_err = String::from_utf8_lossy(&srv.stderr).to_string();
    assert!(srv_err.contains("killed after serving 5 batches"), "server stderr:\n{srv_err}");

    assert!(!out.status.success(), "trainers survived a dead data server");
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("data server"), "no structured data-server report:\n{err}");
    assert!(err.contains("data-plane"), "failure not attributed to the data plane:\n{err}");
    assert!(err.contains("is dead"), "no PeerDead report:\n{err}");
    // Fail-fast, not timeout: well under the transport's receive timeout.
    assert!(elapsed < Duration::from_secs(60), "trainers hung for {elapsed:?}");

    // Flush assertion output before the scratch dir disappears.
    std::io::stdout().flush().ok();
}
