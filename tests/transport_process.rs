//! End-to-end multi-process coverage: spawn the real `dcnn-launch` binary
//! (4 OS processes over TCP) and check its report against the same
//! workload run on the threaded backend inside this test process. Every
//! line is deterministic — allreduce crcs fingerprint the exact result
//! bits, and the stats lines carry per-rank send counters — so the two
//! reports must match byte for byte.

use std::process::Command;

use dist_cnn::launch::{allreduce_workload, workload};

fn launch_with(ranks: usize, workload: &str, envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcnn-launch"));
    cmd.args(["--ranks", &ranks.to_string(), "--workload", workload]);
    // Isolate from any ambient transport/trace/overlap settings.
    for var in dcnn_collectives::RuntimeConfig::ENV_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn dcnn-launch")
}

fn launch(ranks: usize, workload: &str) -> std::process::Output {
    launch_with(ranks, workload, &[])
}

#[test]
fn four_process_allreduce_matches_threaded_run() {
    let out = launch(4, "allreduce");
    assert!(
        out.status.success(),
        "dcnn-launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let tcp_lines: Vec<String> = String::from_utf8(out.stdout)
        .expect("utf8 report")
        .lines()
        .map(str::to_string)
        .collect();

    let threaded = dcnn_collectives::run_cluster(4, allreduce_workload);
    assert_eq!(
        tcp_lines, threaded[0],
        "spawned-process TCP report diverged from the threaded backend"
    );
    // The report covered every algorithm and every rank's counters.
    assert!(tcp_lines.iter().any(|l| l.starts_with("allreduce multicolor ")));
    assert_eq!(tcp_lines.iter().filter(|l| l.starts_with("stats rank=")).count(), 4);
}

#[test]
fn two_process_quickstart_epoch_matches_threaded_run() {
    let out = launch(2, "quickstart-epoch");
    assert!(
        out.status.success(),
        "dcnn-launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let tcp_report = String::from_utf8(out.stdout).expect("utf8 report");

    let work = workload("quickstart-epoch").expect("registered");
    let threaded = dcnn_collectives::run_cluster(2, work);
    let threaded_report: String =
        threaded[0].iter().map(|l| format!("{l}\n")).collect();
    assert_eq!(
        tcp_report, threaded_report,
        "training over sockets must reproduce the threaded trajectory bit-for-bit"
    );
}

#[test]
fn two_process_overlap_epoch_matches_threaded_run() {
    // The epoch lines are bitwise-deterministic; overlap_frac/inflight_hwm
    // are measured timings and may differ between runs, so compare only the
    // training trajectory and sanity-check the measurements separately.
    fn epoch_lines(report: &str) -> Vec<String> {
        report.lines().filter(|l| l.starts_with("epoch ")).map(str::to_string).collect()
    }
    fn overlap_frac(report: &str) -> f64 {
        report
            .lines()
            .find_map(|l| l.strip_prefix("overlap_frac="))
            .expect("report carries overlap_frac")
            .parse()
            .expect("overlap_frac parses")
    }

    let work = workload("overlap-epoch").expect("registered");
    let threaded = dcnn_collectives::run_cluster(2, work);
    let threaded_epochs: Vec<String> = threaded[0]
        .iter()
        .filter(|l| l.starts_with("epoch "))
        .cloned()
        .collect();
    assert!(!threaded_epochs.is_empty());

    // Blocking (no buckets) over real sockets reproduces the trajectory.
    let blocking = launch_with(2, "overlap-epoch", &[]);
    assert!(blocking.status.success(), "{}", String::from_utf8_lossy(&blocking.stderr));
    let blocking_report = String::from_utf8(blocking.stdout).expect("utf8");
    assert_eq!(epoch_lines(&blocking_report), threaded_epochs);

    // Hooked overlap (buckets launched mid-backprop) over real sockets is
    // bitwise identical to both, and reports a finite overlap fraction.
    let hooked = launch_with(
        2,
        "overlap-epoch",
        &[("DCNN_BUCKET_BYTES", "16384"), ("DCNN_OVERLAP_MODE", "hooked")],
    );
    assert!(hooked.status.success(), "{}", String::from_utf8_lossy(&hooked.stderr));
    let hooked_report = String::from_utf8(hooked.stdout).expect("utf8");
    assert_eq!(
        epoch_lines(&hooked_report),
        threaded_epochs,
        "hooked overlap over sockets must not change a single loss bit"
    );
    let frac = overlap_frac(&hooked_report);
    assert!((0.0..=1.0).contains(&frac), "overlap_frac={frac}");
}

#[test]
fn four_process_sharded_epoch_matches_replicated_bitwise() {
    // The sharded-optimizer acceptance test: the same 4-rank TCP training
    // run with and without DCNN_SHARD_OPTIM must print identical `epoch`
    // lines (reduce-scatter → shard-local step → allgather is arithmetic-
    // identical to allreduce + replicated step on the ring schedule), while
    // the sharded run's measured per-rank optimizer residency shrinks by at
    // least the world size.
    fn epoch_lines(report: &str) -> Vec<String> {
        report.lines().filter(|l| l.starts_with("epoch ")).map(str::to_string).collect()
    }
    fn rank0_opt_bytes(report: &str) -> u64 {
        report
            .lines()
            .find_map(|l| l.strip_prefix("resident rank=0 "))
            .and_then(|l| l.split("opt_bytes=").nth(1))
            .expect("report carries rank 0 residency")
            .parse()
            .expect("opt_bytes parses")
    }

    let rep = launch_with(4, "sharded-epoch", &[]);
    assert!(rep.status.success(), "{}", String::from_utf8_lossy(&rep.stderr));
    let rep_report = String::from_utf8(rep.stdout).expect("utf8");

    let shd = launch_with(4, "sharded-epoch", &[("DCNN_SHARD_OPTIM", "1")]);
    assert!(shd.status.success(), "{}", String::from_utf8_lossy(&shd.stderr));
    let shd_report = String::from_utf8(shd.stdout).expect("utf8");

    let rep_epochs = epoch_lines(&rep_report);
    assert_eq!(rep_epochs.len(), 2, "{rep_report}");
    assert_eq!(
        epoch_lines(&shd_report),
        rep_epochs,
        "sharded optimizer must not change a single loss bit"
    );

    let (rep_opt, shd_opt) = (rank0_opt_bytes(&rep_report), rank0_opt_bytes(&shd_report));
    assert!(
        shd_opt * 4 <= rep_opt,
        "sharding should shrink optimizer bytes ~world-size x: replicated={rep_opt} sharded={shd_opt}"
    );
}

#[test]
fn sigkilled_rank_fails_survivors_fast_with_structured_report() {
    // The acceptance test for fault tolerance: start a 3-rank training run
    // over real TCP, SIGKILL rank 1 mid-epoch, and demand that every
    // survivor exits non-zero within a bounded time with a structured error
    // naming the dead peer — no DCNN_RECV_TIMEOUT_MS, no hang, no raw
    // panic backtrace.
    use std::io::BufRead;

    let world = 3usize;
    let rendezvous = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe free port");
        l.local_addr().expect("probe addr").to_string()
    };
    // A fault spec that never fires: arming DCNN_FAULT turns on the
    // per-step heartbeat lines, which tell us when rank 1 is mid-epoch so
    // the external SIGKILL lands deterministically inside training.
    let fault = "kill-after-step=1000000@1";

    let spawn = |rank: usize| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcnn-launch"));
        for var in dcnn_collectives::RuntimeConfig::ENV_VARS {
            cmd.env_remove(var);
        }
        cmd.env("DCNN_LAUNCH_CHILD", "1")
            .env("DCNN_LAUNCH_WORKLOAD", "fault-epoch")
            .env("DCNN_RANK", rank.to_string())
            .env("DCNN_WORLD", world.to_string())
            .env("DCNN_RENDEZVOUS", &rendezvous)
            .env("DCNN_FAULT", fault)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped());
        cmd.spawn().unwrap_or_else(|e| panic!("spawn rank {rank}: {e}"))
    };

    let mut victim = spawn(1);
    let mut survivors: Vec<(usize, std::process::Child)> =
        [0, 2].into_iter().map(|r| (r, spawn(r))).collect();

    // Wait for rank 1's first heartbeat, then SIGKILL it. The kernel closes
    // its sockets; peers must see the bare EOF as a LinkDown.
    let victim_stderr = victim.stderr.take().expect("piped stderr");
    let mut lines = std::io::BufReader::new(victim_stderr).lines();
    let mut saw_heartbeat = false;
    for line in &mut lines {
        let line = line.expect("read victim stderr");
        if line.starts_with("dcnn-fault: rank 1 step") {
            saw_heartbeat = true;
            break;
        }
    }
    assert!(saw_heartbeat, "rank 1 never reached a training step");
    victim.kill().expect("SIGKILL rank 1");
    let _ = victim.wait();

    // Every survivor must notice and die on its own — bounded by the test's
    // deadline, not by any receive timeout (none is set).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    for (rank, child) in &mut survivors {
        let status = loop {
            match child.try_wait().expect("try_wait") {
                Some(status) => break status,
                None if std::time::Instant::now() >= deadline => {
                    // Grab what we can about the stuck process before
                    // killing it, so a hang failure is diagnosable.
                    let stacks = std::fs::read_dir(format!("/proc/{}/task", child.id()))
                        .map(|tasks| {
                            tasks
                                .flatten()
                                .map(|t| {
                                    let dir = t.path();
                                    let read = |f: &str| {
                                        std::fs::read_to_string(dir.join(f))
                                            .unwrap_or_default()
                                    };
                                    format!("[{}]\n{}", read("comm").trim(), read("stack"))
                                })
                                .collect::<String>()
                        })
                        .unwrap_or_default();
                    let _ = child.kill();
                    let mut stderr = String::new();
                    if let Some(mut pipe) = child.stderr.take() {
                        use std::io::Read;
                        let _ = pipe.read_to_string(&mut stderr);
                    }
                    panic!(
                        "rank {rank} still running 10s after peer death: hang\n\
                         --- stderr so far ---\n{stderr}--- thread stacks ---\n{stacks}"
                    );
                }
                None => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        };
        assert!(!status.success(), "rank {rank} exited cleanly despite a dead peer");
    }
    // Each survivor names the peer whose link actually tore under it. The
    // first to fail is always reacting to rank 1 (the only dead process at
    // that instant); the other may instead report the cascade — the first
    // survivor's own abnormal exit. Both are accurate, structured reports.
    let mut named_the_victim = false;
    let outputs: Vec<(usize, std::process::Output)> = survivors
        .into_iter()
        .map(|(rank, child)| (rank, child.wait_with_output().expect("collect output")))
        .collect();
    for (rank, out) in &outputs {
        eprintln!(
            "=== rank {rank} stderr ===\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    for (rank, out) in outputs {
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("is dead"),
            "rank {rank} stderr lacks a structured peer-death report:\n{err}"
        );
        assert!(
            err.contains(&format!("dcnn-launch: rank {rank}: aborted:")),
            "rank {rank} stderr lacks the launcher abort line:\n{err}"
        );
        assert!(
            !err.contains("stack backtrace"),
            "rank {rank} died with a raw backtrace instead of a structured report:\n{err}"
        );
        named_the_victim |= err.contains("peer rank 1 is dead");
    }
    assert!(
        named_the_victim,
        "no survivor named the SIGKILLed rank 1 as the dead peer"
    );
}

#[test]
fn launcher_rejects_unknown_workload() {
    let out = launch(2, "no-such-workload");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn four_process_autotune_epoch_agrees_and_matches_fixed_bitwise() {
    // A tuned run whose candidate set is {ring} must converge to ring and
    // train bit-for-bit like a fixed-ring run — over real TCP, where the
    // probe timings every rank measures genuinely differ. The decisions
    // lines prove the allgather+max merge left all four ranks with the
    // same frozen table.
    fn epoch_lines(report: &str) -> Vec<String> {
        report.lines().filter(|l| l.starts_with("epoch ")).map(str::to_string).collect()
    }
    fn decision_tables(report: &str) -> Vec<String> {
        report
            .lines()
            .filter(|l| l.starts_with("decisions rank="))
            .map(|l| l.splitn(3, ' ').nth(2).expect("table").to_string())
            .collect()
    }

    let tuned = launch_with(4, "autotune-epoch", &[("DCNN_ALGO", "auto:ring")]);
    assert!(tuned.status.success(), "{}", String::from_utf8_lossy(&tuned.stderr));
    let fixed = launch_with(4, "autotune-epoch", &[("DCNN_ALGO", "ring")]);
    assert!(fixed.status.success(), "{}", String::from_utf8_lossy(&fixed.stderr));

    let tuned_out = String::from_utf8(tuned.stdout).expect("utf8 report");
    let fixed_out = String::from_utf8(fixed.stdout).expect("utf8 report");
    assert_eq!(epoch_lines(&tuned_out).len(), 3, "{tuned_out}");
    assert_eq!(
        epoch_lines(&tuned_out),
        epoch_lines(&fixed_out),
        "tuned run diverged from fixed ring"
    );

    let tables = decision_tables(&tuned_out);
    assert_eq!(tables.len(), 4, "{tuned_out}");
    assert!(tables[0].contains("<="), "table never froze: {tables:?}");
    assert!(tables.iter().all(|t| t == &tables[0]), "ranks disagree: {tables:?}");
    assert!(
        decision_tables(&fixed_out).iter().all(|t| t == "ring"),
        "{fixed_out}"
    );
}
