//! End-to-end multi-process coverage: spawn the real `dcnn-launch` binary
//! (4 OS processes over TCP) and check its report against the same
//! workload run on the threaded backend inside this test process. Every
//! line is deterministic — allreduce crcs fingerprint the exact result
//! bits, and the stats lines carry per-rank send counters — so the two
//! reports must match byte for byte.

use std::process::Command;

use dist_cnn::launch::{allreduce_workload, workload};

fn launch(ranks: usize, workload: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dcnn-launch"))
        .args(["--ranks", &ranks.to_string(), "--workload", workload])
        // Isolate from any ambient transport/trace settings.
        .env_remove("DCNN_RENDEZVOUS")
        .env_remove("DCNN_TRANSPORT")
        .env_remove("DCNN_TRACE")
        .env_remove("DCNN_TRACE_JSON")
        .output()
        .expect("spawn dcnn-launch")
}

#[test]
fn four_process_allreduce_matches_threaded_run() {
    let out = launch(4, "allreduce");
    assert!(
        out.status.success(),
        "dcnn-launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let tcp_lines: Vec<String> = String::from_utf8(out.stdout)
        .expect("utf8 report")
        .lines()
        .map(str::to_string)
        .collect();

    let threaded = dcnn_collectives::run_cluster(4, allreduce_workload);
    assert_eq!(
        tcp_lines, threaded[0],
        "spawned-process TCP report diverged from the threaded backend"
    );
    // The report covered every algorithm and every rank's counters.
    assert!(tcp_lines.iter().any(|l| l.starts_with("allreduce multicolor ")));
    assert_eq!(tcp_lines.iter().filter(|l| l.starts_with("stats rank=")).count(), 4);
}

#[test]
fn two_process_quickstart_epoch_matches_threaded_run() {
    let out = launch(2, "quickstart-epoch");
    assert!(
        out.status.success(),
        "dcnn-launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let tcp_report = String::from_utf8(out.stdout).expect("utf8 report");

    let work = workload("quickstart-epoch").expect("registered");
    let threaded = dcnn_collectives::run_cluster(2, work);
    let threaded_report: String =
        threaded[0].iter().map(|l| format!("{l}\n")).collect();
    assert_eq!(
        tcp_report, threaded_report,
        "training over sockets must reproduce the threaded trajectory bit-for-bit"
    );
}

#[test]
fn launcher_rejects_unknown_workload() {
    let out = launch(2, "no-such-workload");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}
