//! End-to-end multi-process coverage: spawn the real `dcnn-launch` binary
//! (4 OS processes over TCP) and check its report against the same
//! workload run on the threaded backend inside this test process. Every
//! line is deterministic — allreduce crcs fingerprint the exact result
//! bits, and the stats lines carry per-rank send counters — so the two
//! reports must match byte for byte.

use std::process::Command;

use dist_cnn::launch::{allreduce_workload, workload};

fn launch_with(ranks: usize, workload: &str, envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcnn-launch"));
    cmd.args(["--ranks", &ranks.to_string(), "--workload", workload]);
    // Isolate from any ambient transport/trace/overlap settings.
    for var in dcnn_collectives::RuntimeConfig::ENV_VARS {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn dcnn-launch")
}

fn launch(ranks: usize, workload: &str) -> std::process::Output {
    launch_with(ranks, workload, &[])
}

#[test]
fn four_process_allreduce_matches_threaded_run() {
    let out = launch(4, "allreduce");
    assert!(
        out.status.success(),
        "dcnn-launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let tcp_lines: Vec<String> = String::from_utf8(out.stdout)
        .expect("utf8 report")
        .lines()
        .map(str::to_string)
        .collect();

    let threaded = dcnn_collectives::run_cluster(4, allreduce_workload);
    assert_eq!(
        tcp_lines, threaded[0],
        "spawned-process TCP report diverged from the threaded backend"
    );
    // The report covered every algorithm and every rank's counters.
    assert!(tcp_lines.iter().any(|l| l.starts_with("allreduce multicolor ")));
    assert_eq!(tcp_lines.iter().filter(|l| l.starts_with("stats rank=")).count(), 4);
}

#[test]
fn two_process_quickstart_epoch_matches_threaded_run() {
    let out = launch(2, "quickstart-epoch");
    assert!(
        out.status.success(),
        "dcnn-launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let tcp_report = String::from_utf8(out.stdout).expect("utf8 report");

    let work = workload("quickstart-epoch").expect("registered");
    let threaded = dcnn_collectives::run_cluster(2, work);
    let threaded_report: String =
        threaded[0].iter().map(|l| format!("{l}\n")).collect();
    assert_eq!(
        tcp_report, threaded_report,
        "training over sockets must reproduce the threaded trajectory bit-for-bit"
    );
}

#[test]
fn two_process_overlap_epoch_matches_threaded_run() {
    // The epoch lines are bitwise-deterministic; overlap_frac/inflight_hwm
    // are measured timings and may differ between runs, so compare only the
    // training trajectory and sanity-check the measurements separately.
    fn epoch_lines(report: &str) -> Vec<String> {
        report.lines().filter(|l| l.starts_with("epoch ")).map(str::to_string).collect()
    }
    fn overlap_frac(report: &str) -> f64 {
        report
            .lines()
            .find_map(|l| l.strip_prefix("overlap_frac="))
            .expect("report carries overlap_frac")
            .parse()
            .expect("overlap_frac parses")
    }

    let work = workload("overlap-epoch").expect("registered");
    let threaded = dcnn_collectives::run_cluster(2, work);
    let threaded_epochs: Vec<String> = threaded[0]
        .iter()
        .filter(|l| l.starts_with("epoch "))
        .cloned()
        .collect();
    assert!(!threaded_epochs.is_empty());

    // Blocking (no buckets) over real sockets reproduces the trajectory.
    let blocking = launch_with(2, "overlap-epoch", &[]);
    assert!(blocking.status.success(), "{}", String::from_utf8_lossy(&blocking.stderr));
    let blocking_report = String::from_utf8(blocking.stdout).expect("utf8");
    assert_eq!(epoch_lines(&blocking_report), threaded_epochs);

    // Hooked overlap (buckets launched mid-backprop) over real sockets is
    // bitwise identical to both, and reports a finite overlap fraction.
    let hooked = launch_with(
        2,
        "overlap-epoch",
        &[("DCNN_BUCKET_BYTES", "16384"), ("DCNN_OVERLAP_MODE", "hooked")],
    );
    assert!(hooked.status.success(), "{}", String::from_utf8_lossy(&hooked.stderr));
    let hooked_report = String::from_utf8(hooked.stdout).expect("utf8");
    assert_eq!(
        epoch_lines(&hooked_report),
        threaded_epochs,
        "hooked overlap over sockets must not change a single loss bit"
    );
    let frac = overlap_frac(&hooked_report);
    assert!((0.0..=1.0).contains(&frac), "overlap_frac={frac}");
}

#[test]
fn launcher_rejects_unknown_workload() {
    let out = launch(2, "no-such-workload");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}
