//! Cross-crate integration tests: the full Algorithm-1 stack — DIMD
//! partitions, DPT executors, multi-color allreduce, SGD with the paper's
//! schedule — wired together exactly as the paper's system is.

use dist_cnn::models::resnet::ResNetConfig;
use dist_cnn::prelude::*;
use dist_cnn::tensor::optim::LrSchedule;

fn flat_lr(lr: f32) -> LrSchedule {
    LrSchedule { init_lr: lr, base_lr: lr, warmup_epochs: 1.0, step_epochs: 1000.0, decay: 0.1 }
}

fn tiny_ds(classes: usize) -> SynthImageNet {
    let mut cfg = SynthConfig::tiny(classes);
    cfg.train_per_class = 32;
    cfg.val_per_class = 8;
    cfg.base_hw = 16;
    cfg.noise = 10.0;
    SynthImageNet::new(cfg)
}

fn tiny_factory(classes: usize) -> impl Fn() -> Box<dyn Module> + Sync {
    move || {
        ResNetConfig {
            blocks: vec![1],
            base_width: 6,
            bottleneck: false,
            classes,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(123)
    }
}

#[test]
fn full_stack_trains_and_converges() {
    let ds = tiny_ds(4);
    let mut cfg = TrainConfig::paper(2, 2, 4, 6);
    cfg.crop = 16;
    cfg.lr = flat_lr(0.06);
    let stats = train_distributed(&cfg, &ds, tiny_factory(4));
    assert_eq!(stats.len(), 6);
    let first = stats[0].train_loss;
    let last = stats[5].train_loss;
    assert!(last < first, "loss {first:.3} → {last:.3}");
    let best = stats.iter().map(|s| s.val_acc).fold(0.0, f64::max);
    assert!(best > 0.4, "val accuracy {best:.2} vs 0.25 chance");
}

#[test]
fn every_allreduce_algorithm_trains_identically() {
    // The optimization claims of the paper rest on the collectives being
    // exact: any algorithm must produce the same training trajectory.
    let ds = tiny_ds(3);
    let losses: Vec<f64> = [
        AllreduceAlgo::MultiColor(4),
        AllreduceAlgo::PipelinedRing,
        AllreduceAlgo::RecursiveDoubling,
        AllreduceAlgo::RingReduceScatter,
        AllreduceAlgo::HalvingDoubling,
    ]
    .into_iter()
    .map(|algo| {
        let mut cfg = TrainConfig::paper(3, 1, 4, 2);
        cfg.crop = 16;
        cfg.lr = flat_lr(0.05);
        cfg.algo = algo.into();
        cfg.validate = false;
        cfg.shuffle_every_epochs = 0;
        let stats = train_distributed(&cfg, &ds, tiny_factory(3));
        stats.last().expect("stats").train_loss
    })
    .collect();
    for w in losses.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 3e-3 * w[0].max(w[1]),
            "allreduce algorithms diverged: {losses:?}"
        );
    }
}

#[test]
fn shuffling_does_not_break_training() {
    let ds = tiny_ds(3);
    let mut cfg = TrainConfig::paper(2, 1, 4, 4);
    cfg.crop = 16;
    cfg.lr = flat_lr(0.05);
    cfg.shuffle_every_epochs = 1; // shuffle aggressively
    let stats = train_distributed(&cfg, &ds, tiny_factory(3));
    assert!(stats.iter().all(|s| s.train_loss.is_finite()));
    assert!(stats.last().expect("stats").train_loss < stats[0].train_loss * 1.2);
}

#[test]
fn replicas_stay_synchronized_across_ranks() {
    // Algorithm 1's invariant: every GPU's weights are identical after every
    // iteration. Train a little, then have each rank hash its weights.
    let ds = tiny_ds(3);
    let factory = tiny_factory(3);
    let hashes = run_cluster(3, |comm| {
        // Check the primitive invariant directly: allreduced gradients are
        // identical across ranks, so identical SGD updates keep replicas in
        // sync.
        let algo = AllreduceAlgo::MultiColor(2).build();
        let mut dimd = Dimd::load_partition(&ds, comm.rank(), comm.size(), 70, comm.rank() as u64);
        let mut exec = DptExecutor::new(2, &factory);
        let mut digest = 0u64;
        for step in 0..3 {
            let (x, labels) = dimd.random_batch(4, 16);
            let out = exec.step(&x, &labels, DptStrategy::Optimized);
            let mut grad = out.grad;
            algo.run(comm, &mut grad);
            for (i, g) in grad.iter().enumerate().step_by(97) {
                digest = digest
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add((g.to_bits() as u64) ^ i as u64 ^ step);
            }
        }
        digest
    });
    assert!(hashes.windows(2).all(|w| w[0] == w[1]), "ranks diverged: {hashes:?}");
}

#[test]
fn group_partitioned_dimd_with_subcommunicator_shuffle() {
    // §4.1's group-based partitioning: 4 learners in 2 groups of 2; each
    // group collectively owns the dataset and shuffles within itself.
    let ds = tiny_ds(4);
    let per_rank = run_cluster(4, |comm| {
        let group = comm.rank() / 2;
        let sub = comm.split(group as u64, comm.rank() as i64);
        let mut dimd = Dimd::load_partition(&ds, sub.rank(), sub.size(), 70, 5);
        dimd.shuffle(&sub, 0, dist_cnn::dimd::shuffle::MPI_COUNT_LIMIT);
        dimd.len()
    });
    // Each group holds one full copy of the dataset.
    assert_eq!(per_rank[0] + per_rank[1], ds.train_len());
    assert_eq!(per_rank[2] + per_rank[3], ds.train_len());
}

#[test]
fn paper_lr_schedule_drives_training() {
    // Warmup then decay, as §5 specifies, on a larger effective batch.
    let ds = tiny_ds(3);
    let mut cfg = TrainConfig::paper(2, 2, 4, 3);
    cfg.crop = 16;
    // paper schedule: k=4, n=4 workers → base_lr 0.1·16/256 ≈ 0.00625 — too
    // small to learn quickly; verify mechanics rather than accuracy.
    let stats = train_distributed(&cfg, &ds, tiny_factory(3));
    assert!(stats[0].lr <= cfg.lr.lr_at(0.0) + 1e-6);
    assert!(stats.iter().all(|s| s.train_loss.is_finite()));
}
