//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` shim using only the built-in `proc_macro` API (the
//! sandbox has no syn/quote). Supports what this workspace derives on:
//! plain structs with named fields and fieldless enums, no generics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct name + field names in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) from the
/// front of `toks`, returning the index of the first remaining token.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a brace-group body on top-level commas. Commas inside `<...>`
/// generic arguments (e.g. `HashMap<String, usize>`) do not split.
fn split_fields(body: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in body.clone() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("vendored serde_derive: expected struct/enum, got {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("vendored serde_derive: expected type name, got {t}"),
    };
    i += 1;
    let body = loop {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("vendored serde_derive: generic types are not supported")
            }
            _ => i += 1,
        }
    };
    let items = split_fields(&body);
    match kind.as_str() {
        "struct" => {
            let fields = items
                .iter()
                .map(|f| {
                    let j = skip_attrs_and_vis(f, 0);
                    match &f[j] {
                        TokenTree::Ident(id) => id.to_string(),
                        t => panic!("vendored serde_derive: expected field name, got {t}"),
                    }
                })
                .collect();
            Shape::Struct(name, fields)
        }
        "enum" => {
            let variants = items
                .iter()
                .map(|v| {
                    let j = skip_attrs_and_vis(v, 0);
                    match &v[j] {
                        TokenTree::Ident(id) => {
                            if v.len() > j + 1 {
                                panic!(
                                    "vendored serde_derive: only fieldless enum variants supported"
                                );
                            }
                            id.to_string()
                        }
                        t => panic!("vendored serde_derive: expected variant, got {t}"),
                    }
                })
                .collect();
            Shape::Enum(name, variants)
        }
        other => panic!("vendored serde_derive: cannot derive for `{other}`"),
    }
}

/// Derive `serde::Serialize` (the vendored shim's JSON trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut code = String::new();
    match parse_shape(input) {
        Shape::Struct(name, fields) => {
            code.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn json_write(&self, out: &mut String) {{\nout.push('{{');\n"
            ));
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::json_write(&self.{f}, out);\n"
                ));
            }
            code.push_str("out.push('}');\n}\n}\n");
        }
        Shape::Enum(name, variants) => {
            code.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn json_write(&self, out: &mut String) {{\nmatch self {{\n"
            ));
            for v in &variants {
                code.push_str(&format!(
                    "{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"
                ));
            }
            code.push_str("}\n}\n}\n");
        }
    }
    code.parse().expect("vendored serde_derive: generated invalid Rust")
}

/// Derive `serde::Deserialize` — a marker impl only; nothing in this
/// workspace parses JSON back into derived types.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_shape(input) {
        Shape::Struct(n, _) | Shape::Enum(n, _) => n,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("vendored serde_derive: generated invalid Rust")
}
