//! Offline stand-in for `proptest`.
//!
//! The sandbox cannot fetch crates.io, so the workspace vendors the subset
//! of the proptest API its tests use: the [`Strategy`] trait with
//! deterministic sampling (integer ranges, tuples, `prop_map`, [`Just`],
//! unions, `collection::vec`, `any`), plus the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` and `prop_oneof!`
//! macros. Sampling is purely random (no shrinking, no persistence);
//! the RNG is seeded from the test name so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG (SplitMix64) used to sample strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test name) so every run of a
    /// given test sees the same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Why a test case did not pass.
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed — fail the test.
    Fail(String),
}

/// Per-`proptest!` block configuration.
#[derive(Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Driver behind the `proptest!` macro: repeatedly sample-and-run until
/// `cfg.cases` cases were accepted. Rejected cases (via `prop_assume!`)
/// are retried, with a cap so a near-impossible assumption cannot hang.
pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let max_attempts = cfg.cases.saturating_mul(20).max(100);
    for attempt in 0..max_attempts {
        if accepted >= cfg.cases {
            return;
        }
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest property `{name}` failed (attempt {attempt}): {msg}")
            }
        }
    }
    assert!(
        accepted > 0,
        "proptest property `{name}`: every sampled case was rejected by prop_assume!"
    );
}

/// A source of random values. Object-safe (the combinator methods require
/// `Self: Sized`), so `Box<dyn Strategy<Value = T>>` works for unions.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase, for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                ((self.start as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                ((*self.start() as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type AnyStrategy: Strategy<Value = Self>;
    /// Full-range strategy for this type.
    fn arbitrary() -> Self::AnyStrategy;
}

/// Full-range strategy for a primitive (see [`Arbitrary`]).
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
    sample: fn(&mut TestRng) -> T,
}

impl<T> Strategy for AnyPrimitive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type AnyStrategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::AnyStrategy {
                AnyPrimitive {
                    _marker: std::marker::PhantomData,
                    sample: |rng| rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type AnyStrategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::AnyStrategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
            sample: |rng| rng.next_u64() & 1 == 1,
        }
    }
}

/// Full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::AnyStrategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element`-sampled values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a proptest file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body for
/// the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &cfg, |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure fails the whole property with
/// the sampled case's message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::TestCaseError::Fail(format!(
                "assert_eq failed: {:?} vs {:?}",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Skip (do not count) the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(usize),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds; tuples and prop_map compose.
        #[test]
        fn ranges_in_bounds(a in 1usize..=3, b in 10u64..20, pair in (0u32..5, 0u32..5)
            .prop_map(|(x, y)| x + y))
        {
            prop_assert!((1..=3).contains(&a));
            prop_assert!((10..20).contains(&b));
            prop_assert!(pair <= 8);
        }

        /// collection::vec honors length bounds and element strategies.
        #[test]
        fn vec_strategy(v in prop::collection::vec((any::<u8>(), 0usize..4), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (_, x) in &v {
                prop_assert!(*x < 4);
            }
        }

        /// prop_oneof unions heterogeneous strategy types.
        #[test]
        fn oneof_and_assume(s in prop_oneof![
            Just(Shape::Dot),
            (1usize..5).prop_map(Shape::Line),
        ]) {
            if let Shape::Line(n) = &s {
                prop_assume!(*n != 2);
                prop_assert!(*n < 5 && *n != 2);
            } else {
                prop_assert_eq!(s, Shape::Dot);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::from_name("x");
        let mut r2 = crate::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
