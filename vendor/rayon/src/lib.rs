//! Offline stand-in for `rayon`.
//!
//! The sandbox cannot fetch crates.io, so the workspace vendors the slice
//! parallelism API it uses (`par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut` and the rayon-style combinators on them) as thin
//! wrappers over the sequential std iterators. Results are bit-identical to
//! rayon's (the kernels are order-independent per chunk); only wall-clock
//! parallelism is lost. Swap the workspace dependency back to crates.io
//! rayon to restore it.

/// Sequential stand-in for a rayon `ParallelIterator`: wraps a std iterator
/// and exposes rayon's method signatures (which differ from `Iterator`'s for
/// `fold` and `reduce` — rayon takes identity *closures* because it folds
/// per-thread).
pub struct SeqParIter<I>(I);

impl<I: Iterator> SeqParIter<I> {
    /// Pair up with another parallel iterator, like rayon's `zip`.
    pub fn zip<J: Iterator>(self, other: SeqParIter<J>) -> SeqParIter<std::iter::Zip<I, J>> {
        SeqParIter(self.0.zip(other.0))
    }

    /// Index each item, like rayon's `enumerate`.
    pub fn enumerate(self) -> SeqParIter<std::iter::Enumerate<I>> {
        SeqParIter(self.0.enumerate())
    }

    /// Transform each item, like rayon's `map`.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> SeqParIter<std::iter::Map<I, F>> {
        SeqParIter(self.0.map(f))
    }

    /// Consume every item, like rayon's `for_each`.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style fold: `identity` seeds one accumulator per thread and `f`
    /// folds items into it, yielding the partial accumulators. Sequentially
    /// there is exactly one partial result.
    pub fn fold<T, ID, F>(self, identity: ID, f: F) -> SeqParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        SeqParIter(std::iter::once(self.0.fold(identity(), f)))
    }

    /// Rayon-style reduce: combine all items starting from `identity()`.
    pub fn reduce<ID, F>(self, identity: ID, f: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), f)
    }

    /// Sum the items, like rayon's `sum`.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Collect into a container, like rayon's `collect`.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

/// `par_*` accessors for shared slices.
pub trait ParallelSliceExt<T> {
    /// Sequential stand-in for `rayon`'s `par_iter`.
    fn par_iter(&self) -> SeqParIter<std::slice::Iter<'_, T>>;
    /// Sequential stand-in for `rayon`'s `par_chunks`.
    fn par_chunks(&self, size: usize) -> SeqParIter<std::slice::Chunks<'_, T>>;
}

/// `par_*` accessors for mutable slices.
pub trait ParallelSliceMutExt<T> {
    /// Sequential stand-in for `rayon`'s `par_iter_mut`.
    fn par_iter_mut(&mut self) -> SeqParIter<std::slice::IterMut<'_, T>>;
    /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> SeqParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> SeqParIter<std::slice::Iter<'_, T>> {
        SeqParIter(self.iter())
    }
    fn par_chunks(&self, size: usize) -> SeqParIter<std::slice::Chunks<'_, T>> {
        SeqParIter(self.chunks(size))
    }
}

impl<T> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> SeqParIter<std::slice::IterMut<'_, T>> {
        SeqParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> SeqParIter<std::slice::ChunksMut<'_, T>> {
        SeqParIter(self.chunks_mut(size))
    }
}

impl<T> ParallelSliceExt<T> for Vec<T> {
    fn par_iter(&self) -> SeqParIter<std::slice::Iter<'_, T>> {
        self.as_slice().par_iter()
    }
    fn par_chunks(&self, size: usize) -> SeqParIter<std::slice::Chunks<'_, T>> {
        self.as_slice().par_chunks(size)
    }
}

impl<T> ParallelSliceMutExt<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> SeqParIter<std::slice::IterMut<'_, T>> {
        self.as_mut_slice().par_iter_mut()
    }
    fn par_chunks_mut(&mut self, size: usize) -> SeqParIter<std::slice::ChunksMut<'_, T>> {
        self.as_mut_slice().par_chunks_mut(size)
    }
}

/// What `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{ParallelSliceExt, ParallelSliceMutExt, SeqParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_zip_matches_sequential() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let mut c = [0.0f32; 4];
        c.par_chunks_mut(2).zip(a.par_chunks(2)).for_each(|(ci, ai)| {
            for (x, y) in ci.iter_mut().zip(ai) {
                *x = y * 2.0;
            }
        });
        assert_eq!(c, [2.0, 4.0, 6.0, 8.0]);
        let s: f32 = a.par_iter().sum();
        assert_eq!(s, 10.0);
    }

    #[test]
    fn fold_reduce_uses_rayon_signatures() {
        let a = [1u32, 2, 3, 4, 5, 6];
        let total = a
            .par_chunks(2)
            .fold(|| 0u32, |acc, c| acc + c.iter().sum::<u32>())
            .reduce(|| 0u32, |x, y| x + y);
        assert_eq!(total, 21);
    }

    #[test]
    fn map_enumerate_collect() {
        let a = [10, 20, 30];
        let v: Vec<(usize, i32)> = a.par_iter().enumerate().map(|(i, &x)| (i, x * 2)).collect();
        assert_eq!(v, vec![(0, 20), (1, 40), (2, 60)]);
    }
}
