//! Offline stand-in for `criterion`.
//!
//! The sandbox cannot fetch crates.io, so the workspace vendors the small
//! slice of the criterion API its benches use. Each benchmark closure is
//! timed over a handful of iterations and the mean wall-clock time (plus
//! throughput when declared) is printed — no statistics, warm-up
//! scheduling, or HTML reports.

use std::time::{Duration, Instant};

/// Declared work per iteration, used to print throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", "4096KiB")` → `algo/4096KiB`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_id.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed iterations per benchmark (criterion's sample count;
    /// here simply the iteration count, clamped to keep shim runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work so results print a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a routine that takes a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Benchmark a plain routine.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Finish the group (report output is already printed per-benchmark).
    pub fn finish(&mut self) {}

    fn bencher(&self) -> Bencher {
        Bencher { elapsed: Duration::ZERO, iters: self.sample_size.clamp(1, 20) as u32 }
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let mut line = format!(
            "{}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e3,
            b.iters
        );
        match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                line.push_str(&format!(", {:.2} GiB/s", n as f64 / per_iter / (1u64 << 30) as f64));
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                line.push_str(&format!(", {:.2} Melem/s", n as f64 / per_iter / 1e6));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Entry point handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_function("f", |b| b.iter(|| ran += 1));
        assert!(ran >= 3);
        g.bench_with_input(BenchmarkId::new("f", 7), &5usize, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
