//! Offline stand-in for `serde`.
//!
//! The sandbox cannot fetch crates.io, so the workspace vendors the subset
//! it uses: a JSON-only [`Serialize`] trait (the vendored `serde_json`
//! renders through it) and a [`Deserialize`] trait implemented concretely
//! only by `serde_json::Value` — the sole type this repo parses into.
//! The derive macros come from the sibling `serde_derive` shim.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-serializable. `json_write` appends a compact JSON encoding of
/// `self` to `out`; the derive macro generates field-by-field impls.
pub trait Serialize {
    /// Append this value's compact JSON encoding to `out`.
    fn json_write(&self, out: &mut String);
}

/// JSON-deserializable. Only `serde_json::Value` implements the parse for
/// real; derived impls keep the default (an error) because nothing in this
/// workspace parses back into concrete structs.
pub trait Deserialize: Sized {
    /// Parse from a JSON document. The default rejects: derived impls are
    /// compile-time markers only.
    fn json_parse(_s: &str) -> Result<Self, String> {
        Err("vendored serde shim: only serde_json::Value deserializes".into())
    }
}

/// Escape and quote a string per JSON.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! ser_display_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
ser_display_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn json_write(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String) {
        match self {
            Some(v) => v.json_write(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.json_write(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json_write(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.json_write(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    #[test]
    fn primitives_and_containers() {
        let mut s = String::new();
        (vec![1u32, 2], "a\"b".to_string(), Some(1.5f64), [3usize; 2]).json_write(&mut s);
        assert_eq!(s, r#"[[1,2],"a\"b",1.5,[3,3]]"#);
    }

    #[test]
    fn nonfinite_floats_are_null() {
        let mut s = String::new();
        f64::NAN.json_write(&mut s);
        assert_eq!(s, "null");
    }
}
