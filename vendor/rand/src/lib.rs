//! Offline stand-in for the `rand` crate.
//!
//! The build sandbox has no crates.io access, so the workspace vendors the
//! exact API subset it uses: `StdRng` (xoshiro256\*\* seeded via SplitMix64),
//! `SeedableRng::seed_from_u64`, the `RngExt` extension trait
//! (`random`, `random_range`), and `seq::SliceRandom::shuffle`.
//! Deterministic across platforms; not cryptographically secure.

/// Infinite stream of pseudo-random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their full domain (the `Standard`
/// distribution of the real crate).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range; panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < 2^-32 for every span this workspace uses.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardSample::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = StandardSample::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A value drawn uniformly from `T`'s full domain.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* with SplitMix64
    /// seed expansion. Deterministic given the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices (the subset of the real trait this repo uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = r.random();
            assert!((0.0..1.0).contains(&f));
            let g = r.random_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn int_ranges_hit_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.random_range(0usize..5)] = true;
            let v = r.random_range(0usize..=4);
            assert!(v <= 4);
        }
        assert!(seen.iter().all(|&s| s));
        // Full-domain inclusive range must not overflow.
        let _ = r.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }
}
