//! Offline stand-in for `serde_json`.
//!
//! Provides `to_string` / `to_string_pretty` over the vendored `serde`
//! shim's JSON trait, plus a small [`Value`] document model with a
//! recursive-descent parser — the only deserialization target this
//! workspace uses.

use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_write(&mut out);
    Ok(out)
}

/// Serialize to human-indented JSON (2-space indent, like serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let v: Value = from_str(&compact)?;
    let mut out = String::new();
    v.write_pretty(&mut out, 0);
    Ok(out)
}

/// Parse a JSON document. Concretely supported for [`Value`] (the only
/// type this workspace parses into).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::json_parse(s).map_err(Error)
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like serde_json's arbitrary numbers
    /// for the magnitudes this repo emits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object member by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(a) if a.is_empty() => out.push_str("[]"),
            Value::Array(a) => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(m) if m.is_empty() => out.push_str("{}"),
            Value::Object(m) => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    serde::write_json_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl serde::Deserialize for Value {
    fn json_parse(s: &str) -> Result<Self, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing characters at byte {}", p.i));
        }
        Ok(v)
    }
}

impl serde::Serialize for Value {
    fn json_write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.json_write(out),
            Value::Number(n) => n.json_write(out),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(a) => a.json_write(out),
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.json_write(out);
                }
                out.push('}');
            }
        }
    }
}

/// `v[0]` on arrays (panics out of bounds, matching serde_json's null-ish
/// behavior closely enough for tests that index valid documents).
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => &a[i],
            _ => panic!("cannot index {self:?} with {i}"),
        }
    }
}

/// `v["key"]` on objects.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no member {key:?} in {self:?}"))
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of document".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("empty")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.push((k, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let j = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v: Value = from_str(j).expect("parses");
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"]["c"], "x\ny");
        assert_eq!(v["b"]["d"], Value::Null);
        let back = to_string(&v).expect("emits");
        let v2: Value = from_str(&back).expect("reparses");
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Value = from_str(r#"[{"x":1},{"x":2}]"#).expect("parses");
        let pretty = to_string_pretty(&v).expect("pretty");
        assert!(pretty.contains("\n"));
        let v2: Value = from_str(&pretty).expect("reparses");
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{nope}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
