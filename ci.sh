#!/usr/bin/env bash
# Tier-1 verification + lint gate. Run from the repo root.
#
# All third-party deps are vendored path crates (see vendor/), so the build
# needs no network; --offline makes that explicit but some cargo versions
# reject it when the lockfile predates vendoring, so fall back to a plain
# invocation if the offline one fails to start.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "+ $*"
    "$@"
}

cargo_try_offline() {
    if ! run cargo --offline "$@"; then
        echo "retrying without --offline"
        run cargo "$@"
    fi
}

cargo_try_offline build --release
cargo_try_offline test -q --workspace

# Multi-process smoke: the TCP transport with real spawned processes, via
# the dcnn-launch binary (release build from above). A 4-rank allreduce
# exercises every algorithm with bitwise cross-rank verification built into
# the workload; the quickstart epoch runs Algorithm 1 end to end over
# sockets.
run ./target/release/dcnn-launch --ranks 4 --workload allreduce
run ./target/release/dcnn-launch --ranks 2 --workload quickstart-epoch

# Overlap-engine smoke: the same epoch trained blocking (bucket bytes 0)
# and bucketed (4 KiB buckets, many nonblocking allreduces in flight) must
# report bitwise-identical loss lines at two ranks, and the bucketed run
# must prove actual overlap via its in-flight high-water mark.
echo "+ bucketed-epoch bitwise smoke (blocking vs DCNN_BUCKET_BYTES=4096)"
blocking_out=$(DCNN_BUCKET_BYTES=0 ./target/release/dcnn-launch --ranks 2 --workload bucketed-epoch)
bucketed_out=$(DCNN_BUCKET_BYTES=4096 ./target/release/dcnn-launch --ranks 2 --workload bucketed-epoch)
echo "$blocking_out" | sed 's/^/  blocking: /'
echo "$bucketed_out" | sed 's/^/  bucketed: /'
if [ "$(echo "$blocking_out" | grep '^epoch ')" != "$(echo "$bucketed_out" | grep '^epoch ')" ]; then
    echo "ci.sh: bucketed epoch diverged from blocking epoch" >&2
    exit 1
fi
hwm=$(echo "$bucketed_out" | sed -n 's/^inflight_hwm=//p')
if [ -z "$hwm" ] || [ "$hwm" -lt 2 ]; then
    echo "ci.sh: expected >=2 bucket reduces in flight, saw '${hwm:-none}'" >&2
    exit 1
fi

# Backward-hook overlap smoke: the overlap-epoch workload trained three
# ways over real TCP processes — blocking, drain (buckets launched after
# backward), hooked (buckets launched mid-backprop) — must produce
# bitwise-identical epoch lines, and the hooked schedule must hide strictly
# more reduce time than drain. The fraction is a wall-clock measurement, so
# allow a few attempts before declaring the scheduler broken.
echo "+ overlap-epoch three-way smoke (blocking vs drain vs hooked)"
overlap_ok=0
for attempt in 1 2 3; do
    blocking_out=$(DCNN_BUCKET_BYTES=0 ./target/release/dcnn-launch --ranks 2 --workload overlap-epoch)
    drain_out=$(DCNN_BUCKET_BYTES=16384 DCNN_OVERLAP_MODE=drain ./target/release/dcnn-launch --ranks 2 --workload overlap-epoch)
    hooked_out=$(DCNN_BUCKET_BYTES=16384 DCNN_OVERLAP_MODE=hooked ./target/release/dcnn-launch --ranks 2 --workload overlap-epoch)
    if [ "$(echo "$blocking_out" | grep '^epoch ')" != "$(echo "$drain_out" | grep '^epoch ')" ]; then
        echo "ci.sh: drain overlap epoch diverged from blocking epoch" >&2
        exit 1
    fi
    if [ "$(echo "$blocking_out" | grep '^epoch ')" != "$(echo "$hooked_out" | grep '^epoch ')" ]; then
        echo "ci.sh: hooked overlap epoch diverged from blocking epoch" >&2
        exit 1
    fi
    drain_frac=$(echo "$drain_out" | sed -n 's/^overlap_frac=//p')
    hooked_frac=$(echo "$hooked_out" | sed -n 's/^overlap_frac=//p')
    echo "  attempt $attempt: drain overlap_frac=$drain_frac hooked overlap_frac=$hooked_frac"
    if awk -v h="$hooked_frac" -v d="$drain_frac" 'BEGIN { exit !(h > d) }'; then
        overlap_ok=1
        break
    fi
done
if [ "$overlap_ok" -ne 1 ]; then
    echo "ci.sh: hooked schedule never beat drain on overlap_frac" >&2
    exit 1
fi

# Fault-injection smoke: a 2-rank training run over real TCP processes,
# with rank 1 armed to abort() right after optimizer step 2 (mid-epoch 0).
# No DCNN_RECV_TIMEOUT_MS is set: the survivor must fail fast on the bare
# EOF alone, exit nonzero with a structured report naming the dead peer,
# and never show a raw panic backtrace. `timeout` bounds the whole launch
# so a propagation regression fails CI instead of wedging it.
echo "+ fault-injection smoke (kill-after-step=2@1 over TCP processes)"
fault_status=0
fault_out=$(DCNN_FAULT=kill-after-step=2@1 timeout 30 \
    ./target/release/dcnn-launch --ranks 2 --workload fault-epoch 2>&1) || fault_status=$?
echo "$fault_out" | sed 's/^/  fault: /'
if [ "$fault_status" -eq 0 ]; then
    echo "ci.sh: fault-injection run exited 0 despite a killed rank" >&2
    exit 1
fi
if [ "$fault_status" -eq 124 ]; then
    echo "ci.sh: fault-injection run hung (timeout): survivors never detected the dead peer" >&2
    exit 1
fi
if ! echo "$fault_out" | grep -q "peer rank 1 is dead"; then
    echo "ci.sh: survivor did not report 'peer rank 1 is dead'" >&2
    exit 1
fi
if echo "$fault_out" | grep -q "stack backtrace"; then
    echo "ci.sh: fault report contains a raw panic backtrace" >&2
    exit 1
fi

# Sharded-optimizer smoke: the same 4-rank TCP training run with the
# replicated strategy (allreduce + full-replica SGD) and the sharded one
# (DCNN_SHARD_OPTIM=1: reduce-scatter gradients, shard-local step,
# allgather parameters) must print bitwise-identical epoch lines, and the
# sharded run's measured per-rank optimizer residency must shrink by at
# least the world size.
echo "+ sharded-optimizer smoke (replicated vs DCNN_SHARD_OPTIM=1, 4 ranks)"
rep_out=$(./target/release/dcnn-launch --ranks 4 --workload sharded-epoch)
shd_out=$(DCNN_SHARD_OPTIM=1 ./target/release/dcnn-launch --ranks 4 --workload sharded-epoch)
echo "$rep_out" | sed 's/^/  replicated: /'
echo "$shd_out" | sed 's/^/  sharded:    /'
if [ "$(echo "$rep_out" | grep '^epoch ')" != "$(echo "$shd_out" | grep '^epoch ')" ]; then
    echo "ci.sh: sharded optimizer diverged from the replicated strategy" >&2
    exit 1
fi
rep_opt=$(echo "$rep_out" | sed -n 's/^resident rank=0 .*opt_bytes=//p')
shd_opt=$(echo "$shd_out" | sed -n 's/^resident rank=0 .*opt_bytes=//p')
if [ -z "$rep_opt" ] || [ -z "$shd_opt" ] || [ "$((shd_opt * 4))" -gt "$rep_opt" ]; then
    echo "ci.sh: sharding did not shrink optimizer bytes ~world-size x" \
         "(replicated=${rep_opt:-none} sharded=${shd_opt:-none})" >&2
    exit 1
fi

# Self-tuning-collectives smoke: the autotune-epoch workload trained with
# a tuned policy whose candidate set is {ring} must print bitwise-identical
# epoch lines to a fixed-ring run over 4 real TCP processes, the tuner must
# freeze a real decision table (size-class entries, not the probe
# placeholder), and all four ranks' tables must agree — the allgather+max
# merge is what makes per-rank wall-clock timings safe to act on.
echo "+ autotune smoke (DCNN_ALGO=auto:ring vs DCNN_ALGO=ring, 4 ranks)"
tuned_out=$(DCNN_ALGO=auto:ring DCNN_BUCKET_BYTES=4096 ./target/release/dcnn-launch --ranks 4 --workload autotune-epoch)
fixed_out=$(DCNN_ALGO=ring DCNN_BUCKET_BYTES=4096 ./target/release/dcnn-launch --ranks 4 --workload autotune-epoch)
echo "$tuned_out" | sed 's/^/  tuned: /'
echo "$fixed_out" | sed 's/^/  fixed: /'
if [ "$(echo "$tuned_out" | grep '^epoch ')" != "$(echo "$fixed_out" | grep '^epoch ')" ]; then
    echo "ci.sh: tuned (auto:ring) training diverged from fixed ring" >&2
    exit 1
fi
tables=$(echo "$tuned_out" | sed -n 's/^decisions rank=[0-9]* //p')
if [ "$(echo "$tables" | wc -l)" -ne 4 ]; then
    echo "ci.sh: expected a decisions line from each of 4 ranks" >&2
    exit 1
fi
if [ "$(echo "$tables" | sort -u | wc -l)" -ne 1 ]; then
    echo "ci.sh: ranks disagree on the frozen decision table:" >&2
    echo "$tables" >&2
    exit 1
fi
if ! echo "$tables" | head -n 1 | grep -q '<='; then
    echo "ci.sh: tuner never froze a size-class decision table: $tables" >&2
    exit 1
fi

# Data-plane smoke: the same data-epoch workload (2 epochs, cross-node
# shuffle with a tiny Algorithm 2 segment cap) run fully in-process and
# then streamed from a separate dcnn-data-server process must print
# bitwise-identical epoch lines — the service moved the blob partitions
# out of the trainers without touching a single bit of training.
echo "+ data-plane smoke (in-process vs dcnn-data-server)"
inproc_out=$(./target/release/dcnn-launch --ranks 2 --workload data-epoch)
data_dir=$(mktemp -d)
./target/release/dcnn-data-server --workload data-epoch --world 2 \
    --addr-file "$data_dir/addr0" 2>"$data_dir/server.log" &
server_pid=$!
for _ in $(seq 1 200); do
    [ -s "$data_dir/addr0" ] && break
    sleep 0.05
done
if [ ! -s "$data_dir/addr0" ]; then
    echo "ci.sh: dcnn-data-server never published its address" >&2
    cat "$data_dir/server.log" >&2
    exit 1
fi
service_out=$(DCNN_DATA_SERVICE=$(cat "$data_dir/addr0") timeout 120 \
    ./target/release/dcnn-launch --ranks 2 --workload data-epoch)
wait "$server_pid" || {
    echo "ci.sh: dcnn-data-server exited nonzero" >&2
    cat "$data_dir/server.log" >&2
    exit 1
}
echo "$inproc_out"  | sed 's/^/  in-process: /'
echo "$service_out" | sed 's/^/  service:    /'
if [ "$(echo "$inproc_out" | grep '^epoch ')" != "$(echo "$service_out" | grep '^epoch ')" ]; then
    echo "ci.sh: service-backed data-epoch diverged from in-process" >&2
    exit 1
fi
if ! grep -q 'shuffle epoch=0 rounds=' "$data_dir/server.log"; then
    echo "ci.sh: server never ran the segmented epoch shuffle" >&2
    cat "$data_dir/server.log" >&2
    exit 1
fi
rm -rf "$data_dir"

# Performance-baseline smoke: run the hot-path microbenchmarks in quick
# mode (bounded iterations), assert the BENCH_<date>.json trajectory row is
# produced, and gate tracked kernels against the committed baseline —
# dcnn-perf exits 1 if any tracked row is >20% slower than the newest
# committed BENCH_*.json.
echo "+ perf baseline smoke (dcnn-perf --quick)"
baseline=$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
rm -rf target/bench-smoke
if [ -n "$baseline" ]; then
    run ./target/release/dcnn-perf --quick --out target/bench-smoke \
        --baseline "$baseline" --max-regress 0.20
else
    echo "ci.sh: no committed BENCH_*.json baseline; running ungated" >&2
    run ./target/release/dcnn-perf --quick --out target/bench-smoke
fi
if ! ls target/bench-smoke/BENCH_*.json >/dev/null 2>&1; then
    echo "ci.sh: dcnn-perf did not write a BENCH_<date>.json report" >&2
    exit 1
fi

# Scenario-matrix evaluation smoke: a tiny {ring, multicolor:2} × {4 KiB,
# 256 KiB} matrix over both the threaded fabric and real 2-rank TCP
# processes (dcnn-eval re-launches dcnn-launch per TCP cell). Asserts every
# row carries the dcnn-eval-v1 schema, the report names a winner for each
# of the four size classes, and the simnet discrepancy artifact exists.
echo "+ eval matrix smoke (dcnn-eval, threads + 2-rank tcp)"
rm -rf target/eval-smoke
run ./target/release/dcnn-eval --algos ring,multicolor:2 --worlds 2 \
    --payloads 4096,262144 --transports threads,tcp --iters 2 \
    --out target/eval-smoke --launch ./target/release/dcnn-launch
rows=$(ls target/eval-smoke/cell-*.json 2>/dev/null | wc -l)
if [ "$rows" -ne 8 ]; then
    echo "ci.sh: expected 8 eval rows in target/eval-smoke, found $rows" >&2
    exit 1
fi
if grep -L '"schema": "dcnn-eval-v1"' target/eval-smoke/cell-*.json | grep -q .; then
    echo "ci.sh: eval row(s) missing the dcnn-eval-v1 schema tag:" >&2
    grep -L '"schema": "dcnn-eval-v1"' target/eval-smoke/cell-*.json >&2
    exit 1
fi
for class in \
    'transport=tcp world=2 payload=4096' \
    'transport=tcp world=2 payload=262144' \
    'transport=threads world=2 payload=4096' \
    'transport=threads world=2 payload=262144'; do
    if ! grep -q "^winner $class" target/eval-smoke/report.md; then
        echo "ci.sh: eval report names no winner for '$class'" >&2
        cat target/eval-smoke/report.md >&2
        exit 1
    fi
done
if [ ! -s target/eval-smoke/discrepancy.json ]; then
    echo "ci.sh: dcnn-eval wrote no discrepancy.json artifact" >&2
    exit 1
fi
rm -rf target/eval-smoke

# Lint gate: warnings are errors. Clippy may be absent on minimal
# toolchains; skip (loudly) rather than fail the whole gate.
if cargo clippy --version >/dev/null 2>&1; then
    cargo_try_offline clippy --workspace --all-targets -- -D warnings
else
    echo "cargo clippy not installed; skipping lint gate"
fi

echo "ci.sh: all checks passed"
