//! Quickstart: train a scaled-down ResNet across a simulated cluster with
//! all three of the paper's optimizations active, and watch loss/accuracy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dist_cnn::models::resnet::ResNetConfig;
use dist_cnn::prelude::*;

fn main() {
    // A small synthetic "ImageNet": 6 classes, 64 train + 16 val per class.
    let mut synth = SynthConfig::tiny(6);
    synth.train_per_class = 64;
    synth.val_per_class = 16;
    let ds = SynthImageNet::new(synth);

    // 4 learners × 2 GPUs × batch 4 (global batch 32), the paper's
    // multi-color allreduce + DIMD partitions + optimized DPT, plus the
    // overlap engine: gradients leave in 16 KiB reverse-layer buckets whose
    // allreduces launch from the backward hook, mid-backprop (set
    // DCNN_BUCKET_BYTES to override, 0 for the fused blocking path;
    // DCNN_OVERLAP_MODE=drain for launch-after-backward).
    let rt = dist_cnn::collectives::RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"));
    let mut cfg = TrainConfig::paper(4, 2, 4, 8);
    cfg.crop = 32;
    cfg.bucket_bytes = 16 * 1024;
    cfg.apply_runtime(&rt);
    cfg.lr = dist_cnn::tensor::optim::LrSchedule {
        init_lr: 0.05,
        base_lr: 0.05,
        warmup_epochs: 1.0,
        step_epochs: 6.0,
        decay: 0.1,
    };

    println!(
        "training scaled ResNet on {} train / {} val images, {} ranks × {} GPUs, global batch {}, \
         gradient buckets of {} KiB",
        ds.train_len(),
        ds.val_len(),
        cfg.nodes,
        cfg.gpus_per_node,
        cfg.nodes * cfg.gpus_per_node * cfg.batch_per_gpu,
        cfg.bucket_bytes / 1024,
    );

    let t0 = std::time::Instant::now();
    let stats = train_distributed(&cfg, &ds, || ResNetConfig::tiny(6).build(7));
    for s in &stats {
        println!(
            "epoch {:>2}  lr {:.3}  train loss {:.4}  train acc {:>5.1}%  val acc {:>5.1}%  \
             comm {:>5.1} MiB / {:>4} msgs  allreduce {:>6.1} ms  recv wait {:>6.1} ms  \
             overlap {:>4.0}%  inflight hwm {}",
            s.epoch,
            s.lr,
            s.train_loss,
            s.train_acc * 100.0,
            s.val_acc * 100.0,
            s.comm_bytes as f64 / (1 << 20) as f64,
            s.comm_msgs,
            s.allreduce_secs * 1e3,
            s.comm_wait_secs * 1e3,
            s.overlap_frac * 100.0,
            s.async_inflight_hwm,
        );
    }
    let best = stats.iter().map(|s| s.val_acc).fold(0.0, f64::max);
    println!(
        "best top-1 validation accuracy: {:.1}% (chance {:.1}%) in {:.1}s",
        best * 100.0,
        100.0 / 6.0,
        t0.elapsed().as_secs_f64()
    );
}
