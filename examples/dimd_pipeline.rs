//! The DIMD data path end to end (paper §4.1): build the blob + index,
//! partition it across learner ranks, serve random batches, and run
//! Algorithm 2's segmented alltoallv shuffle — all for real.
//!
//! ```text
//! cargo run --release --example dimd_pipeline
//! ```

use dist_cnn::dimd::blob::BlobStore;
use dist_cnn::dimd::shuffle::MPI_COUNT_LIMIT;
use dist_cnn::prelude::*;

fn main() {
    // 1. Build the dataset blob the way the paper does: resize shorter side,
    //    compress, concatenate, index.
    let mut synth = SynthConfig::tiny(8);
    synth.train_per_class = 40;
    synth.base_hw = 48;
    synth.hw_jitter = 8; // varied sizes so the resize path matters
    let ds = SynthImageNet::new(synth);
    let store = BlobStore::build_train(&ds, 0..ds.train_len(), 60, Some(32));
    println!(
        "blob built: {} records, {:.1} KiB total, {:.0} B/record average ({:.1}x compression)",
        store.len(),
        store.blob_bytes() as f64 / 1024.0,
        store.avg_record_bytes(),
        (3 * 32 * 32) as f64 / store.avg_record_bytes()
    );
    let file = store.to_file_bytes();
    let reloaded = BlobStore::from_file_bytes(&file);
    println!("file format round-trip: {} bytes on disk", file.len());
    assert_eq!(reloaded.len(), store.len());

    // 2. Partitioned load + random batches + shuffle across 4 learners.
    let nodes = 4;
    let results = run_cluster(nodes, |comm| {
        let mut dimd = Dimd::load_partition(&ds, comm.rank(), nodes, 60, 9 + comm.rank() as u64);
        let before = dimd.len();
        let (batch, labels) = dimd.random_batch(8, 32);
        assert_eq!(batch.shape(), &[8, 3, 32, 32]);

        // Algorithm 2: segmented so no single alltoallv exceeds the cap
        // (tiny cap here to force several segments, like the paper's m>1).
        dimd.shuffle(comm, 0, (MPI_COUNT_LIMIT).min(64 * 1024));
        let after = dimd.len();
        (before, after, labels[0])
    });
    let total_before: usize = results.iter().map(|r| r.0).sum();
    let total_after: usize = results.iter().map(|r| r.1).sum();
    println!("shuffle across {nodes} ranks: per-rank records {:?} -> {:?} (total conserved: {})",
        results.iter().map(|r| r.0).collect::<Vec<_>>(),
        results.iter().map(|r| r.1).collect::<Vec<_>>(),
        total_before == total_after
    );
    assert_eq!(total_before, total_after);

    // 3. The virtual-time cost of the same operations at paper scale.
    let model = EpochTimeModel::minsky(32);
    let wl22 = Workload::imagenet_22k();
    println!(
        "modelled ImageNet-22k shuffle on 32 Minsky nodes: {:.1} s (paper: 4.2 s), {:.1} GB/node",
        model.shuffle_secs(wl22.blob_bytes, 1),
        model.shuffle_memory_per_node(wl22.blob_bytes) / 1e9
    );
    let fs = FileServer::paper_nfs();
    println!(
        "one-time bulk load of the 22k blob: {:.0} s sequential vs {:.0} s of random reads per epoch without DIMD",
        fs.bulk_load_secs(wl22.blob_bytes),
        fs.epoch_random_read_secs(wl22.images, wl22.raw_record_bytes, 32 * 20)
    );
}
