//! Drive the network simulator directly: build a schedule, run it on the
//! fat-tree, inspect the critical path, link utilization, and export a
//! Gantt timeline — the diagnostics used to understand *why* the paper's
//! multi-color allreduce wins.
//!
//! ```text
//! cargo run --release --example fabric_sim
//! ```

use dist_cnn::collectives::{Allreduce, CostModel, MultiColor, Pipeline, RecursiveDoubling};
use dist_cnn::simnet::{critical_path, FatTree, OpKind, SimOptions};

fn main() {
    let nodes = 16;
    let payload = 93e6;
    let topo = FatTree::minsky(nodes);
    let cost = CostModel::default();
    let opts = SimOptions::default();

    // Keep the schedule small enough to read: 4 pipeline chunks.
    let mc = MultiColor::with_pipeline(4, Pipeline { target_bytes: 32 << 20, max_chunks: 4 });
    let sched = mc.schedule(nodes, payload, &cost);
    let rep = sched.simulate(&topo, &opts);

    println!(
        "multicolor-4 on {nodes} nodes, {:.0} MB: {:.2} ms, {} ops, {} rate recomputes",
        payload / 1e6,
        rep.makespan * 1e3,
        sched.len(),
        rep.rate_recomputes
    );
    println!("peak link utilization: {:.0}%", rep.max_link_utilization(&topo) * 100.0);

    println!("\ncritical path (algorithmic):");
    for &op in critical_path(&sched, &rep).iter().take(12) {
        let desc = match sched.ops()[op].kind {
            OpKind::Transfer { src, dst, bytes } => {
                format!("transfer {src:>2} → {dst:<2} {:>6.2} MB", bytes / 1e6)
            }
            OpKind::Compute { rank, secs } => {
                format!("compute  on {rank:<2}     {:>6.2} ms", secs * 1e3)
            }
        };
        println!(
            "  op {op:>4}  {desc}  [{:.3} → {:.3} ms]",
            rep.start[op] * 1e3,
            rep.finish[op] * 1e3
        );
    }

    // Timeline export for plotting.
    let csv = rep.timeline_csv(&sched);
    println!("\ntimeline CSV: {} rows (first 3):", csv.lines().count() - 1);
    for line in csv.lines().take(4) {
        println!("  {line}");
    }

    // Contrast with the un-pipelined comparator.
    let rd = RecursiveDoubling.schedule(nodes, payload, &cost);
    let rep_rd = rd.simulate(&topo, &opts);
    println!(
        "\nopenmpi-default for contrast: {:.2} ms over {} ops ({}× slower)",
        rep_rd.makespan * 1e3,
        rd.len(),
        (rep_rd.makespan / rep.makespan).round()
    );
}
