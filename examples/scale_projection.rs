//! Scale projection: use the epoch-time model to project the paper's
//! headline result — 90 epochs of ResNet-50 on 256 P100 GPUs — and sweep
//! what-if configurations (node counts, batch sizes, interconnects) the
//! paper could not measure.
//!
//! ```text
//! cargo run --release --example scale_projection
//! ```

use dist_cnn::collectives::CostModel;
use dist_cnn::models::resnet50;
use dist_cnn::prelude::*;
use dist_cnn::simnet::FatTreeConfig;

fn main() {
    let census = resnet50();
    let wl = Workload::imagenet_1k();
    let payload = 102e6;

    println!("== 90-epoch ResNet-50 wall time vs cluster size (batch 32/GPU) ==");
    println!("{:>6} {:>6} {:>12} {:>12} {:>10}", "nodes", "GPUs", "s/epoch", "90 epochs", "scaling");
    let mut t8 = 0.0;
    for nodes in [8usize, 16, 32, 64] {
        let m = EpochTimeModel::minsky(nodes);
        let b = m.epoch(&census, &wl, 32, &OptimizationFlags::fully_optimized(), Some(payload));
        let total = b.total();
        if nodes == 8 {
            t8 = total;
        }
        let eff = t8 / (total * nodes as f64 / 8.0) * 100.0;
        println!(
            "{:>6} {:>6} {:>11.1}s {:>9.1} min {:>9.1}%",
            nodes,
            nodes * 4,
            total,
            total * 90.0 / 60.0,
            eff
        );
    }
    println!("paper: 48 minutes on 256 GPUs (64 nodes), Table 2.\n");

    println!("== where the time goes at 64 nodes ==");
    let m = EpochTimeModel::minsky(64);
    let b = m.epoch(&census, &wl, 32, &OptimizationFlags::fully_optimized(), Some(payload));
    println!("  iterations/epoch: {}", b.iterations);
    println!("  compute   {:>8.1}s", b.compute);
    println!("  dpt       {:>8.1}s", b.dpt);
    println!("  allreduce {:>8.1}s", b.allreduce);
    println!("  shuffle   {:>8.1}s", b.shuffle);
    println!("  total     {:>8.1}s/epoch\n", b.total());

    println!("== what-if: interconnect sensitivity (64 nodes, multicolor, 102 MB) ==");
    let cost = CostModel::default();
    for (label, gbps, nics) in [("1×25G", 25.0, 1), ("1×100G", 100.0, 1), ("2×100G (paper)", 100.0, 2), ("2×200G", 200.0, 2)] {
        let mut cfg = FatTreeConfig::minsky(64);
        cfg.nic_bandwidth = dist_cnn::simnet::gbps_to_bytes_per_sec(gbps);
        cfg.nics_per_node = nics;
        let topo = FatTree::new(cfg);
        let algo = AllreduceAlgo::MultiColor(4).build();
        let secs = algo.schedule(64, payload, &cost).simulate(&topo, &SimOptions::default()).makespan;
        println!("  {:<16} allreduce {:>7.1} ms/iter", label, secs * 1e3);
    }
}
