//! Allreduce shootout: every algorithm, executed two ways —
//!
//! 1. **for real** across threaded ranks on this machine (correctness +
//!    relative cost of the message patterns), and
//! 2. **in virtual time** on the simulated 16-node Minsky fat-tree (the
//!    paper's Figure 5 conditions).
//!
//! ```text
//! cargo run --release --example allreduce_shootout
//! ```

use dist_cnn::collectives::CostModel;
use dist_cnn::prelude::*;

fn main() {
    let ranks = 8;
    let elems = 1 << 20; // 4 MiB of f32 per rank
    println!("== real execution: {ranks} rank threads, {} MiB payload ==", (elems * 4) >> 20);
    for algo in AllreduceAlgo::all() {
        let a = algo.build();
        let t0 = std::time::Instant::now();
        // ClusterBuilder (vs plain run_cluster) also returns the runtime's
        // per-rank counters; DCNN_TRACE=1 would add the full event log.
        let run = ClusterBuilder::new(ranks).run(|comm| {
            let mut buf = vec![(comm.rank() + 1) as f32; elems];
            a.run(comm, &mut buf);
            buf[elems / 2]
        });
        let dt = t0.elapsed().as_secs_f64();
        let expect: f32 = (1..=ranks).map(|r| r as f32).sum();
        assert!(
            run.results.iter().all(|&v| (v - expect).abs() < 1e-3),
            "{} wrong sum",
            algo.name()
        );
        let bytes: u64 = run.stats.iter().map(|s| s.bytes_sent).sum();
        let max_wait =
            run.stats.iter().map(CommStats::recv_wait_secs).fold(0.0, f64::max);
        let stash_hwm = run.stats.iter().map(|s| s.stash_hwm).max().unwrap_or(0);
        println!(
            "  {:<20} {:>8.2} ms   (sum ok; {:>6.1} MiB sent, max recv wait {:>6.2} ms, stash hwm {})",
            algo.name(),
            dt * 1e3,
            bytes as f64 / (1 << 20) as f64,
            max_wait * 1e3,
            stash_hwm,
        );
    }

    println!();
    println!("== overlap engine: same payload in 8 nonblocking buckets per rank ==");
    let buckets = 8;
    for algo in AllreduceAlgo::all() {
        let a = algo.build_shared();
        let t0 = std::time::Instant::now();
        let run = ClusterBuilder::new(ranks).run(|comm| {
            // Launch every bucket before draining any — the trainer does the
            // same as backprop hands it reverse-layer gradient segments.
            let pending: Vec<_> = (0..buckets)
                .map(|_| {
                    let chunk = vec![(comm.rank() + 1) as f32; elems / buckets];
                    comm.allreduce_async(std::sync::Arc::clone(&a), chunk)
                })
                .collect();
            pending.into_iter().map(|p| p.wait()[0]).sum::<f32>()
        });
        let dt = t0.elapsed().as_secs_f64();
        let expect: f32 = (1..=ranks).map(|r| r as f32).sum::<f32>() * buckets as f32;
        assert!(
            run.results.iter().all(|&v| (v - expect).abs() < 1e-3),
            "{} wrong bucketed sum",
            algo.name()
        );
        let hwm = run.stats.iter().map(|s| s.async_inflight_hwm).max().unwrap_or(0);
        let max_wait = run.stats.iter().map(CommStats::bucket_wait_secs).fold(0.0, f64::max);
        println!(
            "  {:<20} {:>8.2} ms   (sum ok; inflight hwm {}, max bucket wait {:>6.2} ms)",
            algo.name(),
            dt * 1e3,
            hwm,
            max_wait * 1e3,
        );
    }

    println!();
    println!("== virtual time: 16 Minsky nodes, 2×100 Gbit/s fat-tree, 93 MB payload ==");
    let topo = FatTree::minsky(16);
    let cost = CostModel::default();
    for algo in AllreduceAlgo::all() {
        let s = algo.build().schedule(16, 93e6, &cost);
        let rep = s.simulate(&topo, &SimOptions::default());
        println!(
            "  {:<20} {:>8.2} ms   ({:.1} Gbit/s algorithm bandwidth, {} ops, {:.0}% peak link)",
            algo.name(),
            rep.makespan * 1e3,
            dist_cnn::simnet::throughput_gbps(93e6, rep.makespan),
            s.len(),
            rep.max_link_utilization(&topo) * 100.0,
        );
    }
    println!();
    println!("paper §5.1: the multi-color algorithm takes 50–60% less time than default OpenMPI.");
}
