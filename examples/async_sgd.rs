//! Asynchronous SGD — the paper's §6 future work, made runnable: a
//! parameter server on rank 0, workers pulling weights and pushing
//! gradients, DIMD serving the batches, staleness-aware damping.
//!
//! ```text
//! cargo run --release --example async_sgd
//! ```

use dist_cnn::models::resnet::ResNetConfig;
use dist_cnn::prelude::*;
use dist_cnn::trainer::{train_async, AsyncConfig};

fn main() {
    let mut synth = SynthConfig::tiny(5);
    synth.train_per_class = 48;
    synth.val_per_class = 12;
    synth.base_hw = 16;
    let ds = SynthImageNet::new(synth);
    let factory = || {
        ResNetConfig {
            blocks: vec![1],
            base_width: 8,
            bottleneck: false,
            classes: 5,
            input: [3, 16, 16],
            imagenet_stem: false,
        }
        .build(77)
    };

    for damping in [false, true] {
        let mut cfg = AsyncConfig::new(4, 600);
        cfg.crop = 16;
        cfg.staleness_damping = damping;
        let t0 = std::time::Instant::now();
        let stats = train_async(&cfg, &ds, factory);
        let mut hist = vec![0usize; stats.max_staleness() as usize + 1];
        for &s in &stats.staleness {
            hist[s as usize] += 1;
        }
        println!(
            "damping={damping}: loss {:.3} → {:.3}, val acc {:.1}%, {:.1}s wall",
            stats.early_loss(30),
            stats.late_loss(30),
            stats.val_acc * 100.0,
            t0.elapsed().as_secs_f64()
        );
        println!("  staleness histogram (4 workers): {hist:?}");
    }
    println!();
    println!(
        "the paper (§6): \"in-memory data distribution technique should also improve the data \
         loading performance in the asynchronous case\" — here the same Dimd partitions serve \
         both the synchronous and asynchronous trainers."
    );
}
